"""Property tests: the batch router against the scalar oracle.

The batch router must agree with ``dimension_ordered_route`` **link for
link** — same directed link ids, same order — on random tori, for both
tie-break policies, including the even-length antipodal ties where the
tie-break actually fires, and on degraded-capacity networks (reduced
but non-zero capacities do not change dimension-ordered routes).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSet
from repro.netsim.batchroute import (
    batch_dimension_ordered_routes,
    link_layout,
    vertex_indices,
)
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import dimension_ordered_route, fault_aware_route
from repro.topology.torus import Torus

dims_strategy = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=4
).map(tuple).filter(lambda d: 2 <= math.prod(d) <= 64)

tie_strategy = st.sampled_from(["parity", "positive"])


def _scalar_paths(torus, net, pairs, tie, dim_order=None):
    verts = list(torus.vertices())
    return [
        net.path_to_links(
            dimension_ordered_route(
                torus, verts[i], verts[j], dim_order=dim_order, tie=tie
            )
        )
        for i, j in pairs
    ]


@st.composite
def torus_and_pairs(draw):
    dims = draw(dims_strategy)
    torus = Torus(dims)
    n = torus.num_vertices
    n_pairs = draw(st.integers(min_value=1, max_value=12))
    pairs = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(n_pairs)
    ]
    return torus, pairs


class TestBatchEqualsScalar:
    @given(torus_and_pairs(), tie_strategy)
    @settings(max_examples=80, deadline=None)
    def test_random_pairs_link_for_link(self, tp, tie):
        torus, pairs = tp
        net = LinkNetwork(torus)
        src = np.asarray([i for i, _ in pairs], dtype=np.int64)
        dst = np.asarray([j for _, j in pairs], dtype=np.int64)
        pm = batch_dimension_ordered_routes(torus, src, dst, tie=tie)
        expected = _scalar_paths(torus, net, pairs, tie)
        assert len(pm) == len(expected)
        for got, want in zip(pm, expected):
            assert got.tolist() == want.tolist()

    @given(torus_and_pairs(), tie_strategy)
    @settings(max_examples=40, deadline=None)
    def test_reversed_dim_order(self, tp, tie):
        torus, pairs = tp
        net = LinkNetwork(torus)
        order = list(range(torus.ndim))[::-1]
        src = np.asarray([i for i, _ in pairs], dtype=np.int64)
        dst = np.asarray([j for _, j in pairs], dtype=np.int64)
        pm = batch_dimension_ordered_routes(
            torus, src, dst, dim_order=order, tie=tie
        )
        expected = _scalar_paths(torus, net, pairs, tie, dim_order=order)
        for got, want in zip(pm, expected):
            assert got.tolist() == want.tolist()


class TestAntipodalTies:
    """Even-length dimensions put the antipode at exactly half the ring:
    every hop of the relevant dimension is decided by the tie-break."""

    @given(
        st.lists(
            st.sampled_from([2, 4, 6]), min_size=1, max_size=3
        ).map(tuple).filter(lambda d: math.prod(d) <= 64),
        tie_strategy,
    )
    @settings(max_examples=40, deadline=None)
    def test_all_antipodal_pairs(self, dims, tie):
        torus = Torus(dims)
        net = LinkNetwork(torus)
        verts = list(torus.vertices())
        pairs = [
            (i, vertex_indices(torus, [torus.antipode(v)])[0])
            for i, v in enumerate(verts)
        ]
        src = np.asarray([i for i, _ in pairs], dtype=np.int64)
        dst = np.asarray([j for _, j in pairs], dtype=np.int64)
        pm = batch_dimension_ordered_routes(torus, src, dst, tie=tie)
        expected = _scalar_paths(torus, net, pairs, tie)
        for got, want in zip(pm, expected):
            assert got.tolist() == want.tolist()


class TestDegradedNetworks:
    """Degraded (non-zero) capacities leave dimension-ordered routes
    unchanged, so the batch router must match the fault-aware scalar
    router on degraded-capacity networks too."""

    @given(torus_and_pairs(), st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_degraded_links_keep_batch_routes(self, tp, factor):
        torus, pairs = tp
        net = LinkNetwork(torus)
        verts = list(torus.vertices())
        # Degrade the first link of the first pair's natural route (when
        # it has one) — the most likely link to perturb, if any could.
        i0, j0 = pairs[0]
        route0 = dimension_ordered_route(torus, verts[i0], verts[j0])
        if len(route0) < 2:
            degraded = FaultSet()
        else:
            degraded = FaultSet(
                degraded_links={(route0[0], route0[1]): factor}
            )
        faulted = net.with_faults(degraded)
        assert not np.any(faulted.capacities == 0)
        src = np.asarray([i for i, _ in pairs], dtype=np.int64)
        dst = np.asarray([j for _, j in pairs], dtype=np.int64)
        pm = batch_dimension_ordered_routes(torus, src, dst)
        for (i, j), got in zip(pairs, pm):
            want = faulted.path_to_links(
                fault_aware_route(
                    torus, verts[i], verts[j], degraded
                )
            )
            assert got.tolist() == want.tolist()


class TestLayoutMatchesLinkNetwork:
    @given(dims_strategy)
    @settings(max_examples=50, deadline=None)
    def test_analytic_ids_equal_first_seen_ids(self, dims):
        torus = Torus(dims)
        net = LinkNetwork(torus)
        layout = link_layout(torus)
        assert net.num_links == torus.num_vertices * layout.degree
        verts = list(torus.vertices())
        for rank, u in enumerate(verts):
            for v, _w in torus.neighbors(u):
                k = next(i for i in range(len(u)) if u[i] != v[i])
                a = torus.dims[k]
                if a == 2:
                    step = 1
                else:
                    step = 1 if (u[k] + 1) % a == v[k] else -1
                assert layout.link_id(rank, k, step) == net.link_id(u, v)

    @given(dims_strategy)
    @settings(max_examples=50, deadline=None)
    def test_analytic_capacities_equal_enumerated(self, dims):
        torus = Torus(dims)
        net = LinkNetwork(torus, link_bandwidth=2.0)
        analytic = net.capacities.copy()
        net._build_index()  # force the enumeration path
        enumerated = np.asarray(
            [
                torus.dim_weights[
                    next(i for i in range(len(u)) if u[i] != v[i])
                ]
                * 2.0
                for u, v in (
                    net.link_endpoints(l) for l in range(net.num_links)
                )
            ]
        )
        assert np.array_equal(analytic, enumerated)


class TestFaultMaskedParity:
    """The fault-masked batch path agrees with the scalar fault-aware
    router even when the fault set severs *some* pairs: connected flows
    match link for link, severed flows land in the disconnected index
    array with an empty path row — per-scenario degradation, never a
    raised :class:`PartitionDisconnectedError`."""

    @st.composite
    @staticmethod
    def torus_pairs_faults(draw):
        dims = draw(dims_strategy.filter(lambda d: math.prod(d) >= 4))
        torus = Torus(dims)
        edges = [(u, v) for u, v, _ in torus.edges()]
        k = draw(st.integers(min_value=0, max_value=min(len(edges), 10)))
        picks = draw(st.lists(
            st.integers(min_value=0, max_value=len(edges) - 1),
            min_size=k, max_size=k, unique=True,
        ))
        verts = list(torus.vertices())
        n_nodes = draw(st.integers(min_value=0, max_value=1))
        nodes = [
            verts[draw(st.integers(min_value=0, max_value=len(verts) - 1))]
            for _ in range(n_nodes)
        ]
        faults = FaultSet(
            failed_links=[edges[i] for i in picks], failed_nodes=nodes
        )
        n = torus.num_vertices
        n_pairs = draw(st.integers(min_value=1, max_value=10))
        pairs = [
            (
                draw(st.integers(min_value=0, max_value=n - 1)),
                draw(st.integers(min_value=0, max_value=n - 1)),
            )
            for _ in range(n_pairs)
        ]
        return torus, pairs, faults

    @given(torus_pairs_faults(), tie_strategy)
    @settings(max_examples=60, deadline=None)
    def test_partial_disconnection_parity(self, tpf, tie):
        from repro.faults import PartitionDisconnectedError
        from repro.netsim.batchroute import batch_fault_aware_routes

        torus, pairs, faults = tpf
        net = LinkNetwork(torus)
        verts = list(torus.vertices())
        src = np.asarray([i for i, _ in pairs], dtype=np.int64)
        dst = np.asarray([j for _, j in pairs], dtype=np.int64)
        pm, disconnected = batch_fault_aware_routes(
            torus, src, dst, faults, tie=tie
        )
        assert len(pm) == len(pairs)

        expected_cut = set()
        for f, (i, j) in enumerate(pairs):
            try:
                want = net.path_to_links(fault_aware_route(
                    torus, verts[i], verts[j], faults, tie=tie
                ))
            except PartitionDisconnectedError:
                expected_cut.add(f)
                assert pm[f].size == 0  # severed flows get empty rows
                continue
            assert pm[f].tolist() == want.tolist()
        assert set(disconnected.tolist()) == expected_cut

    @given(torus_pairs_faults())
    @settings(max_examples=40, deadline=None)
    def test_mask_marks_exactly_the_faulted_links(self, tpf):
        from repro.netsim.batchroute import fault_link_mask

        torus, _pairs, faults = tpf
        net = LinkNetwork(torus)
        mask = fault_link_mask(torus, faults)
        layout = link_layout(torus)
        assert mask.shape == (torus.num_vertices * layout.degree,)
        for link in range(net.num_links):
            u, v = net.link_endpoints(link)
            assert mask[link] == bool(faults.blocks(u, v))
