"""Property-based tests (hypothesis) for the virtual-time MPI engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (
    Barrier,
    Compute,
    Recv,
    Send,
    SendRecv,
    VirtualMpi,
    allgather_ring,
)
from repro.topology import Torus


def _world(n_ranks: int) -> VirtualMpi:
    return VirtualMpi(
        Torus((8, 2)), rank_to_node=list(range(n_ranks)),
        link_bandwidth=2.0,
    )


class TestWellFormedProgramsTerminate:
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),   # src
                st.integers(min_value=0, max_value=7),   # dst
                st.floats(min_value=0.1, max_value=4.0),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_matched_send_recv_programs_finish(self, n_ranks, msgs):
        """Any message list executed as (sequential) matched send/recv
        pairs terminates with conserved volume accounting."""
        msgs = [
            (s % n_ranks, d % n_ranks, gb)
            for s, d, gb in msgs
            if s % n_ranks != d % n_ranks
        ]

        def prog(rank, size):
            for idx, (s, d, gb) in enumerate(msgs):
                if rank == s:
                    yield Send(dst=d, gb=gb, tag=idx)
                elif rank == d:
                    yield Recv(src=s, tag=idx)
                yield Barrier()

        res = _world(n_ranks).run(prog)
        assert res.time >= 0
        assert res.total_gb_sent == pytest.approx(
            sum(gb for _, _, gb in msgs)
        )

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.1, max_value=4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_allgather_always_correct(self, n_ranks, gb):
        results = {}

        def prog(rank, size):
            results[rank] = yield from allgather_ring(
                rank, size, rank * 10, gb
            )

        res = _world(n_ranks).run(prog)
        expected = [i * 10 for i in range(n_ranks)]
        assert all(results[r] == expected for r in range(n_ranks))
        # Each rank forwards size-1 blocks.
        assert res.total_gb_sent == pytest.approx(
            n_ranks * (n_ranks - 1) * gb
        )


class TestTimeProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=2, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_barrier_time_is_max_compute(self, seconds):
        def prog(rank, size):
            yield Compute(seconds=seconds[rank])
            yield Barrier()

        res = _world(len(seconds)).run(prog)
        assert res.time == pytest.approx(max(seconds))

    @given(st.floats(min_value=0.1, max_value=8.0))
    @settings(max_examples=30, deadline=None)
    def test_exchange_time_linear_in_volume(self, gb):
        def prog(rank, size):
            if rank < 2:
                yield SendRecv(peer=1 - rank, gb=gb)

        res = _world(4).run(prog)
        assert res.time == pytest.approx(gb / 2.0)

    @given(
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_virtual_time_deterministic(self, n_ranks, gb):
        def prog(rank, size):
            # Deterministic simple pattern: neighbor exchange by parity.
            peer = rank ^ 1
            if peer < size:
                yield SendRecv(peer=peer, gb=gb)

        world = _world(n_ranks if n_ranks % 2 == 0 else n_ranks + 1)
        a = world.run(prog).time
        b = world.run(prog).time
        assert a == b
