"""Property-based tests (hypothesis) for the virtual-time MPI engine."""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultEvent,
    FaultSet,
    PartitionDisconnectedError,
    RepairEvent,
)
from repro.simmpi import (
    Barrier,
    Compute,
    Isend,
    Recv,
    Send,
    SendRecv,
    VirtualMpi,
    allgather_ring,
)
from repro.topology import Torus


def _world(n_ranks: int) -> VirtualMpi:
    return VirtualMpi(
        Torus((8, 2)), rank_to_node=list(range(n_ranks)),
        link_bandwidth=2.0,
    )


class TestWellFormedProgramsTerminate:
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),   # src
                st.integers(min_value=0, max_value=7),   # dst
                st.floats(min_value=0.1, max_value=4.0),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_matched_send_recv_programs_finish(self, n_ranks, msgs):
        """Any message list executed as (sequential) matched send/recv
        pairs terminates with conserved volume accounting."""
        msgs = [
            (s % n_ranks, d % n_ranks, gb)
            for s, d, gb in msgs
            if s % n_ranks != d % n_ranks
        ]

        def prog(rank, size):
            for idx, (s, d, gb) in enumerate(msgs):
                if rank == s:
                    yield Send(dst=d, gb=gb, tag=idx)
                elif rank == d:
                    yield Recv(src=s, tag=idx)
                yield Barrier()

        res = _world(n_ranks).run(prog)
        assert res.time >= 0
        assert res.total_gb_sent == pytest.approx(
            sum(gb for _, _, gb in msgs)
        )

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.1, max_value=4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_allgather_always_correct(self, n_ranks, gb):
        results = {}

        def prog(rank, size):
            results[rank] = yield from allgather_ring(
                rank, size, rank * 10, gb
            )

        res = _world(n_ranks).run(prog)
        expected = [i * 10 for i in range(n_ranks)]
        assert all(results[r] == expected for r in range(n_ranks))
        # Each rank forwards size-1 blocks.
        assert res.total_gb_sent == pytest.approx(
            n_ranks * (n_ranks - 1) * gb
        )


class TestTimeProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=2, max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_barrier_time_is_max_compute(self, seconds):
        def prog(rank, size):
            yield Compute(seconds=seconds[rank])
            yield Barrier()

        res = _world(len(seconds)).run(prog)
        assert res.time == pytest.approx(max(seconds))

    @given(st.floats(min_value=0.1, max_value=8.0))
    @settings(max_examples=30, deadline=None)
    def test_exchange_time_linear_in_volume(self, gb):
        def prog(rank, size):
            if rank < 2:
                yield SendRecv(peer=1 - rank, gb=gb)

        res = _world(4).run(prog)
        assert res.time == pytest.approx(gb / 2.0)

    @given(
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_virtual_time_deterministic(self, n_ranks, gb):
        def prog(rank, size):
            # Deterministic simple pattern: neighbor exchange by parity.
            peer = rank ^ 1
            if peer < size:
                yield SendRecv(peer=peer, gb=gb)

        world = _world(n_ranks if n_ranks % 2 == 0 else n_ranks + 1)
        a = world.run(prog).time
        b = world.run(prog).time
        assert a == b


# --------------------------------------------------------------------- #
# Vector engine ≡ oracle differential suite                              #
# --------------------------------------------------------------------- #
#
# The vectorized FlowLedger backend must reproduce the REPRO_VECTOR=0
# per-object oracle *bit for bit*: RunResult dataclass equality compares
# every float exactly (time, per-rank stats, reroutes, restores,
# degraded_flow_seconds), with no tolerance.


@contextmanager
def _vector_mode(value: str):
    """Pin REPRO_VECTOR for one run (hypothesis-safe, unlike the
    function-scoped monkeypatch fixture under @given)."""
    old = os.environ.get("REPRO_VECTOR")
    os.environ["REPRO_VECTOR"] = value
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_VECTOR"]
        else:
            os.environ["REPRO_VECTOR"] = old


def _run_both(make_world, prog):
    """Run *prog* on fresh worlds under the oracle and vector engines."""
    with _vector_mode("0"):
        oracle = make_world().run(prog)
    with _vector_mode("1"):
        vector = make_world().run(prog)
    return oracle, vector


class TestVectorEngineMatchesOracle:
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),   # src
                st.integers(min_value=0, max_value=7),   # dst
                st.floats(min_value=0.1, max_value=4.0),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_send_recv_programs(self, n_ranks, msgs):
        msgs = [
            (s % n_ranks, d % n_ranks, gb)
            for s, d, gb in msgs
            if s % n_ranks != d % n_ranks
        ]

        def prog(rank, size):
            for idx, (s, d, gb) in enumerate(msgs):
                if rank == s:
                    yield Send(dst=d, gb=gb, tag=idx)
                elif rank == d:
                    yield Recv(src=s, tag=idx)
                yield Barrier()

        oracle, vector = _run_both(lambda: _world(n_ranks), prog)
        assert oracle == vector

    @given(
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0.1, max_value=4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_allgather_collective(self, n_ranks, gb):
        def prog(rank, size):
            yield from allgather_ring(rank, size, rank, gb)

        oracle, vector = _run_both(lambda: _world(n_ranks), prog)
        assert oracle == vector

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_isend_pipeline_with_compute(
        self, n_ranks, depth, gb, seconds
    ):
        def prog(rank, size):
            nxt = (rank + 1) % size
            prev = (rank - 1) % size
            for d in range(depth):
                yield Isend(dst=nxt, gb=gb, tag=d)
            yield Compute(seconds=seconds * (rank + 1))
            for d in range(depth):
                yield Recv(src=prev, tag=d)

        oracle, vector = _run_both(lambda: _world(n_ranks), prog)
        assert oracle == vector

    @given(
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.05, max_value=2.0),
        st.floats(min_value=0.5, max_value=8.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_mid_run_link_failure(self, cut, strike_time, gb):
        """A single severed ring cable mid-run: reroutes must agree."""
        ring = Torus((8,))
        events = [
            FaultEvent(
                time=strike_time,
                faults=FaultSet(
                    failed_links=[((cut,), ((cut + 1) % 8,))]
                ),
            )
        ]

        def prog(rank, size):
            yield SendRecv(peer=(rank + size // 2) % size, gb=gb)

        oracle, vector = _run_both(
            lambda: VirtualMpi(
                ring, link_bandwidth=2.0, fault_events=events
            ),
            prog,
        )
        assert oracle == vector

    @given(
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=1.0, max_value=8.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_fail_then_repair_timeline(
        self, cut, strike_time, repair_delay, gb
    ):
        """Fail → reroute → repair → restore: restores must agree."""
        ring = Torus((8,))
        link = ((cut,), ((cut + 1) % 8,))
        events = [
            FaultEvent(
                time=strike_time,
                faults=FaultSet(failed_links=[link]),
            ),
            RepairEvent(
                time=strike_time + repair_delay, links=(link,)
            ),
        ]

        def prog(rank, size):
            yield SendRecv(peer=(rank + size // 2) % size, gb=gb)
            yield Barrier()
            yield SendRecv(peer=rank ^ 1, gb=gb / 2)

        oracle, vector = _run_both(
            lambda: VirtualMpi(
                ring, link_bandwidth=2.0, fault_events=events
            ),
            prog,
        )
        assert oracle == vector

    @given(
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=0.5, max_value=4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_static_degraded_links(self, slow, factor, gb):
        """Degraded-capacity exposure accounting must agree exactly."""
        ring = Torus((8,))
        faults = FaultSet(
            degraded_links={((slow,), ((slow + 1) % 8,)): factor}
        )

        def prog(rank, size):
            yield SendRecv(peer=(rank + size // 2) % size, gb=gb)

        oracle, vector = _run_both(
            lambda: VirtualMpi(ring, link_bandwidth=2.0, faults=faults),
            prog,
        )
        assert oracle == vector
        assert oracle.degraded_flow_seconds > 0

    def test_disconnection_reports_identically(self):
        """Cutting both ring cables around a node strands its flows;
        both engines must abort with the same structured report."""
        ring = Torus((8,))
        faults = FaultSet(
            failed_links=[((3,), (4,)), ((4,), (5,))]
        )
        events = [FaultEvent(time=0.5, faults=faults)]

        def prog(rank, size):
            yield SendRecv(peer=(rank + size // 2) % size, gb=4.0)

        reports = []
        for mode in ("0", "1"):
            with _vector_mode(mode):
                world = VirtualMpi(
                    ring, link_bandwidth=2.0, fault_events=events
                )
                with pytest.raises(PartitionDisconnectedError) as ei:
                    world.run(prog)
                reports.append(ei.value.report)
        assert reports[0] == reports[1]
        assert reports[0].aborted_flows == reports[1].aborted_flows
