"""Differential suite: stacked solvers ≡ per-scenario scalar solvers.

The stacked rewrite's entire correctness contract is that solving ``S``
scenarios in one numpy pass is **bit-for-bit** the same as solving each
alone with the scalar solvers — same max-min rates, same bottleneck
links, same fluid completion times, same DegradedResult rows.  This
suite drives that contract over random tori, random fault sets
(including fully-disconnecting ones), degenerate single-scenario
stacks, and reversed dimension orders.

The CI ``stacked-equivalence`` leg runs this file twice — with
``REPRO_VECTOR=1`` and ``REPRO_VECTOR=0`` — so the vectorized and
scalar *routing* front-ends are both exercised against the same
equivalence assertions.  Comparisons use ``tobytes()`` (exact bits),
never ``allclose``.
"""

from __future__ import annotations

import math
import types

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSet
from repro.netsim.batchroute import (
    batch_fault_aware_routes,
    fault_capacity_plane,
)
from repro.netsim.fairness import (
    max_min_fair_rates,
    stacked_max_min_fair_rates,
)
from repro.netsim.fluid import FluidSimulation, StackedFluidSimulation
from repro.netsim.network import LinkNetwork
from repro.netsim.stacked import StackedPathMatrix
from repro.topology.torus import Torus

dims_strategy = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=3
).map(tuple).filter(lambda d: 2 <= math.prod(d) <= 48)


@st.composite
def scenario(draw, dims=None):
    """One (torus, src, dst, faults) fault scenario.

    Fault sets mix failed links, failed *nodes* (which can fully
    disconnect flows — including every flow of the scenario), and
    degraded links, so the drawn population includes scenarios whose
    active set is empty.
    """
    if dims is None:
        dims = draw(dims_strategy)
    torus = Torus(dims)
    n = torus.num_vertices
    if draw(st.booleans()):
        # The antipodal bisection pairing (the drivers' pattern).
        src = np.arange(n, dtype=np.int64)
        coords = np.stack(np.unravel_index(src, torus.dims), axis=1)
        d = np.asarray(torus.dims, dtype=np.int64)
        anti = (coords + d[None, :] // 2) % d[None, :]
        dst = np.ravel_multi_index(tuple(anti.T), torus.dims).astype(
            np.int64
        )
    else:
        n_pairs = draw(st.integers(min_value=1, max_value=10))
        src = np.asarray(
            [draw(st.integers(0, n - 1)) for _ in range(n_pairs)],
            dtype=np.int64,
        )
        dst = np.asarray(
            [draw(st.integers(0, n - 1)) for _ in range(n_pairs)],
            dtype=np.int64,
        )
    edges = [(u, v) for u, v, _ in torus.edges()]
    verts = list(torus.vertices())
    failed_links = [
        edges[i]
        for i in draw(
            st.lists(
                st.integers(0, len(edges) - 1),
                min_size=0,
                max_size=min(6, len(edges)),
                unique=True,
            )
        )
    ]
    failed_nodes = [
        verts[i]
        for i in draw(
            st.lists(
                st.integers(0, n - 1),
                min_size=0,
                max_size=min(2, n),
                unique=True,
            )
        )
    ]
    degraded = {
        edges[i]: draw(st.sampled_from([0.25, 0.5, 0.9]))
        for i in draw(
            st.lists(
                st.integers(0, len(edges) - 1),
                min_size=0,
                max_size=min(3, len(edges)),
                unique=True,
            )
        )
    }
    degraded = {
        k: f for k, f in degraded.items() if k not in failed_links
    }
    faults = FaultSet(
        failed_links=failed_links,
        failed_nodes=failed_nodes,
        degraded_links=degraded,
    )
    return torus, src, dst, (None if faults.is_empty() else faults)


def _solve_pieces(torus, src, dst, faults):
    """Route + fault-plane one scenario; return the stacked inputs and
    the scalar-reference capacities."""
    net = LinkNetwork(torus, link_bandwidth=2.0)
    pm, disconnected = batch_fault_aware_routes(
        torus, src, dst, faults
    )
    if faults is not None:
        caps_ref = net.with_faults(faults).capacities
        caps_vec = fault_capacity_plane(torus, net.capacities, faults)
        # The analytic capacity plane must equal with_faults bitwise.
        assert caps_vec.tobytes() == caps_ref.tobytes()
    else:
        caps_ref = net.capacities
    active = None
    if disconnected.size:
        active = np.setdiff1d(
            np.arange(len(pm), dtype=np.int64),
            disconnected,
            assume_unique=True,
        )
    return pm, caps_ref, active


scenarios_strategy = st.lists(scenario(), min_size=1, max_size=5)


class TestStackedFairnessEquivalence:
    @given(scenarios_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rates_and_bottlenecks_bitwise(self, drawn):
        pieces = [_solve_pieces(*s) for s in drawn]
        stack = StackedPathMatrix.from_scenarios(pieces)
        flat, bottlenecks = stacked_max_min_fair_rates(
            stack, return_bottlenecks=True
        )
        for s, (pm, caps, active) in enumerate(pieces):
            fs = stack.flow_slice(s)
            lb = int(stack.link_base[s])
            hb = int(stack.link_base[s + 1])
            local_b = bottlenecks[
                (bottlenecks >= lb) & (bottlenecks < hb)
            ] - lb
            scalar_rates, scalar_b = max_min_fair_rates(
                pm, caps, active=active, return_bottlenecks=True
            )
            if active is not None:
                got = flat[fs][active]
                # Inactive flows never acquire a rate.
                inactive = np.setdiff1d(
                    np.arange(len(pm), dtype=np.int64), active
                )
                assert not flat[fs][inactive].any()
            else:
                got = flat[fs]
            assert got.tobytes() == scalar_rates.tobytes()
            assert local_b.tobytes() == scalar_b.tobytes()

    @given(scenario())
    @settings(max_examples=30, deadline=None)
    def test_single_scenario_stack_degenerate(self, s):
        pm, caps, active = _solve_pieces(*s)
        stack = StackedPathMatrix.from_scenarios([(pm, caps, active)])
        flat = stacked_max_min_fair_rates(stack)
        scalar = max_min_fair_rates(pm, caps, active=active)
        got = flat if active is None else flat[active]
        assert got.tobytes() == scalar.tobytes()

    @given(dims_strategy, st.data())
    @settings(max_examples=25, deadline=None)
    def test_reversed_dimension_orders(self, dims, data):
        """A scenario and its reversed-dims twin stack together and
        each still matches its own scalar solve."""
        fwd = data.draw(scenario(dims=dims))
        rev = data.draw(scenario(dims=tuple(reversed(dims))))
        pieces = [_solve_pieces(*fwd), _solve_pieces(*rev)]
        stack = StackedPathMatrix.from_scenarios(pieces)
        flat = stacked_max_min_fair_rates(stack)
        for s, (pm, caps, active) in enumerate(pieces):
            fs = stack.flow_slice(s)
            scalar = max_min_fair_rates(pm, caps, active=active)
            got = flat[fs] if active is None else flat[fs][active]
            assert got.tobytes() == scalar.tobytes()


class TestStackedFluidEquivalence:
    @given(scenarios_strategy, st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_fluid_solve_bitwise(self, drawn, vol_seed):
        pieces = [_solve_pieces(*s) for s in drawn]
        rng = np.random.default_rng(vol_seed)
        volumes = [
            rng.uniform(0.5, 3.0, size=len(pm)) for pm, _, _ in pieces
        ]
        stack = StackedPathMatrix.from_scenarios(pieces)
        sim = StackedFluidSimulation(stack, np.concatenate(volumes))
        makespans, completions, initial = sim.solve()
        for s, (pm, caps, active) in enumerate(pieces):
            fs = stack.flow_slice(s)
            if active is not None and active.size == 0:
                assert makespans[s] == 0.0
                assert not completions[fs].any()
                continue
            if active is not None:
                from repro.netsim.batchroute import PathMatrix

                sub = PathMatrix.from_paths(
                    [pm[i] for i in active.tolist()]
                )
                svol = volumes[s][active]
            else:
                sub, svol = pm, volumes[s]
            net = types.SimpleNamespace(capacities=caps)
            smk, scomp, sinit = FluidSimulation(net, sub, svol).solve()
            assert float(makespans[s]) == smk
            if active is not None:
                assert completions[fs][active].tobytes() == scomp.tobytes()
                assert initial[fs][active].tobytes() == sinit.tobytes()
            else:
                assert completions[fs].tobytes() == scomp.tobytes()
                assert initial[fs].tobytes() == sinit.tobytes()


class TestDriverRowEquivalence:
    """The faultstudy block runner against its scalar task function —
    rows (including DegradedResult payloads) must be equal."""

    @given(
        st.sampled_from([(1, 1, 1, 1), (2, 1, 1, 1), (2, 2, 1, 1)]),
        st.integers(0, 2**16),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    @settings(max_examples=8, deadline=None)
    def test_fault_sweep_rows_equal(self, dims, seed, max_k, trials):
        from repro.allocation.geometry import PartitionGeometry
        from repro.experiments.faultstudy import (
            _fluid_scenario,
            _fluid_scenario_block,
        )

        geometry = PartitionGeometry(dims)
        tasks = [
            (geometry.dims, k, t, seed + 1000 * k + t, 2.0, "parity")
            for k in range(max_k + 1)
            for t in range(1 if k == 0 else trials)
        ]
        scalar_rows = [_fluid_scenario(t) for t in tasks]
        block_rows = _fluid_scenario_block(tasks)
        assert block_rows == scalar_rows
