"""Resilient-sweep determinism: interrupted runs equal clean runs.

The checkpoint/resume contract is that *any* completed prefix of a
sweep's journal — as left behind by a kill at an arbitrary point — lets
a restarted sweep produce results bit-identical to an uninterrupted
one.  These properties drive random task grids through
:func:`repro.resilience.resilient_sweep_map`, truncate the journal at a
random record boundary (the on-disk state after a mid-sweep death; the
journal flushes per record and tolerates torn lines), resume, and
compare.  Transient failures with retries must not perturb results
either: retries re-run the original task tuple, never a re-randomized
one.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import split_seeds
from repro.resilience import ResiliencePolicy, resilient_sweep_map

grids = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6),
    min_size=1,
    max_size=16,
)


def _poly(task):
    value, seed = task
    return (value * value - 3 * value, seed % 7, float(value) / 16.0)


def _flaky_poly(task):
    """Deterministically fail the first attempt of every 3rd task."""
    value, seed, attempts_dir = task
    marker = Path(attempts_dir) / f"{value}.{seed}.ran"
    if value % 3 == 0 and not marker.exists():
        marker.write_text("1")
        raise RuntimeError(f"transient failure for {value}")
    return (value * value, seed)


class TestResumeBitIdentical:
    @given(grids, st.integers(min_value=0, max_value=17))
    @settings(max_examples=40, deadline=None)
    def test_truncated_checkpoint_resumes_identically(self, values, cut):
        tasks = [
            (v, s) for v, s in zip(values, split_seeds(0, len(values)))
        ]
        clean = resilient_sweep_map(_poly, tasks)
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ckpt.jsonl"
            full = resilient_sweep_map(_poly, tasks, checkpoint=ckpt)
            assert full == clean
            # The on-disk state after a kill: header + first `cut`
            # completed-task records (clamped to what exists).
            lines = ckpt.read_text().splitlines()
            keep = 1 + min(cut, len(lines) - 1)
            ckpt.write_text("\n".join(lines[:keep]) + "\n")
            resumed = resilient_sweep_map(_poly, tasks, checkpoint=ckpt)
        assert resumed == clean

    @given(grids)
    @settings(max_examples=25, deadline=None)
    def test_retried_sweep_equals_failure_free_sweep(self, values):
        with tempfile.TemporaryDirectory() as tmp:
            tasks = [
                (v, s, tmp)
                for v, s in zip(values, split_seeds(1, len(values)))
            ]
            flaky = resilient_sweep_map(
                _flaky_poly, tasks,
                policy=ResiliencePolicy(
                    max_retries=1, backoff_base=0.0, backoff_max=0.0
                ),
            )
            # Second run: all markers exist, nothing fails.
            smooth = resilient_sweep_map(_flaky_poly, tasks)
        assert flaky == smooth
        assert flaky == [(v * v, s) for v, s, _ in tasks]
