"""Determinism of the parallel sweep executor.

The contract of :func:`repro.parallel.sweep_map` is that ``jobs > 1`` is
*invisible* in the results: for any task grid, the parallel run is
bit-identical to the serial run.  These tests exercise that contract on
randomized geometry/seed grids for every sweep-shaped driver, across
fixed base seeds — including the stateful parts of the results
(`RunResult.reroutes`, fault-study ranking fractions) that would expose
any sharing of RNG or cache state between workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation.advisor import JobRequest
from repro.allocation.geometry import PartitionGeometry
from repro.allocation.policy import juqueen_policy
from repro.allocation.variability import simulate_job_streams
from repro.experiments.faultstudy import degraded_bisection_study
from repro.experiments.pairing import PairingParameters, run_pairing_sweep
from repro.machines.catalog import JUQUEEN, MIRA
from repro.parallel import split_seeds, sweep_map
from repro.simmpi import FaultEvent, FaultSet, Recv, Send, VirtualMpi
from repro.topology import Torus

SEEDS = [0, 1, 2]

#: Small fitting geometries a randomized grid may draw from.
GEOMETRY_POOL = [
    (1, 1, 1, 1),
    (2, 1, 1, 1),
    (2, 2, 1, 1),
    (3, 1, 1, 1),
    (2, 2, 2, 1),
    (4, 1, 1, 1),
    (3, 2, 1, 1),
]


def _random_grid(seed: int, n: int) -> list[tuple[tuple[int, ...], int]]:
    """A randomized (geometry dims, task seed) grid, fixed by *seed*."""
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(GEOMETRY_POOL), size=n)
    return [
        (GEOMETRY_POOL[int(p)], task_seed)
        for p, task_seed in zip(picks, split_seeds(seed, n))
    ]


def faulted_ring_run(task: tuple[tuple[int, ...], int]) -> tuple:
    """One simmpi run on a seeded faulted ring; returns full RunResult.

    Drops a seeded link mid-run so rerouting (RunResult.reroutes) is
    part of the compared payload.
    """
    dims, seed = task
    n = 8
    ring = Torus((n,))
    rng = np.random.default_rng(seed)
    a = int(rng.integers(0, n))
    # Fail a link *not* adjacent to the 0 -> n/2 flow endpoints so the
    # transfer always survives via the other direction.
    event = FaultEvent(
        time=0.5,
        faults=FaultSet(failed_links=[((a,), ((a + 1) % n,))]),
    )

    def transfer(rank, size):
        if rank == 0:
            yield Send(dst=n // 2, gb=4.0)
        elif rank == n // 2:
            yield Recv(src=0)

    try:
        res = VirtualMpi(
            ring, link_bandwidth=2.0, fault_events=[event]
        ).run(transfer)
    except Exception as exc:  # disconnection is a valid, comparable outcome
        return ("error", type(exc).__name__)
    return ("ok", res.time, res.reroutes, res.ranks)


class TestSweepDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pairing_sweep_bit_identical(self, seed):
        grid = _random_grid(seed, 6)
        geometries = [PartitionGeometry(dims) for dims, _ in grid]
        params = PairingParameters(rounds=2)
        serial = run_pairing_sweep(geometries, params, jobs=1)
        parallel = run_pairing_sweep(geometries, params, jobs=4)
        assert parallel == serial

    @pytest.mark.parametrize("seed", SEEDS)
    def test_simmpi_reroutes_bit_identical(self, seed):
        grid = _random_grid(seed, 8)
        serial = sweep_map(faulted_ring_run, grid, jobs=1)
        parallel = sweep_map(faulted_ring_run, grid, jobs=4)
        assert parallel == serial
        # The grid is only a meaningful witness if some run rerouted.
        assert any(r[0] == "ok" and r[2] > 0 for r in serial)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faultstudy_rankings_bit_identical(self, seed):
        machine = [MIRA, JUQUEEN, MIRA][seed % 3]
        size = [16, 8, 4][seed % 3]
        serial = degraded_bisection_study(
            machine, size, max_failures=3, trials=5, seed=seed, jobs=1
        )
        parallel = degraded_bisection_study(
            machine, size, max_failures=3, trials=5, seed=seed, jobs=4
        )
        # Dataclass equality covers every float bit-for-bit, including
        # the ranking_stable_fraction column.
        assert parallel == serial

    @pytest.mark.parametrize("seed", SEEDS)
    def test_traced_parallel_sweep_bit_identical(self, monkeypatch, seed):
        """Tracing must be invisible in the results: a ``jobs=4`` sweep
        under ``REPRO_TRACE=1`` is bit-identical to the untraced serial
        run — while actually collecting spans and counters."""
        from repro import observability

        grid = _random_grid(seed, 6)
        geometries = [PartitionGeometry(dims) for dims, _ in grid]
        params = PairingParameters(rounds=2)
        serial_untraced = run_pairing_sweep(geometries, params, jobs=1)

        s = observability.OBS
        saved = (
            s.enabled, s.events, s.dropped_events, s.stack,
            s.span_totals, s.counters, s.gauges, s.origin,
        )
        monkeypatch.setenv("REPRO_TRACE", "1")
        try:
            assert observability.configure_from_env() is True
            observability.reset()
            parallel_traced = run_pairing_sweep(geometries, params, jobs=4)
            counters = dict(s.counters)
            span_totals = dict(s.span_totals)
        finally:
            (
                s.enabled, s.events, s.dropped_events, s.stack,
                s.span_totals, s.counters, s.gauges, s.origin,
            ) = saved
        assert parallel_traced == serial_untraced
        # The trace itself must be non-trivial (worker metrics merged).
        # The sweep may run per-task (scalar) or block-dispatched
        # through the stacked fluid solver; both must surface metrics.
        assert counters.get("pairing.runs") == len(geometries)
        fluid_runs = counters.get("netsim.fluid.runs", 0) + counters.get(
            "netsim.fluid.stacked_runs", 0
        )
        assert fluid_runs > 0
        assert "experiment.pairing.sweep" in span_totals
        assert (
            "experiment.pairing.run" in span_totals
            or "parallel.block" in span_totals
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_variability_streams_bit_identical(self, seed):
        job = JobRequest(8, 3600.0, 0.5)
        policy = juqueen_policy()
        serial = simulate_job_streams(policy, job, 25, seed=seed, jobs=1)
        parallel = simulate_job_streams(policy, job, 25, seed=seed, jobs=4)
        assert parallel == serial
        # And both match a direct per-rule loop (the pre-executor path).
        from repro.allocation.variability import (
            SELECTION_RULES,
            simulate_job_stream,
        )

        direct = [
            simulate_job_stream(policy, job, 25, rule, seed=seed)
            for rule in SELECTION_RULES
        ]
        assert serial == direct
