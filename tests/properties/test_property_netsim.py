"""Property-based tests (hypothesis) for the network simulator."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairness import max_min_fair_rates
from repro.netsim.fluid import FluidSimulation
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import dimension_ordered_route
from repro.topology.torus import Torus

dims_strategy = st.lists(
    st.integers(min_value=2, max_value=5), min_size=1, max_size=3
).map(tuple).filter(lambda d: math.prod(d) <= 40)


@st.composite
def network_and_flows(draw):
    dims = draw(dims_strategy)
    torus = Torus(dims)
    net = LinkNetwork(torus, link_bandwidth=2.0)
    verts = list(torus.vertices())
    n_flows = draw(st.integers(min_value=1, max_value=8))
    paths = []
    volumes = []
    for _ in range(n_flows):
        i = draw(st.integers(min_value=0, max_value=len(verts) - 1))
        j = draw(st.integers(min_value=0, max_value=len(verts) - 1))
        if i == j:
            j = (j + 1) % len(verts)
        paths.append(
            net.path_to_links(
                dimension_ordered_route(torus, verts[i], verts[j])
            )
        )
        volumes.append(draw(st.floats(min_value=0.1, max_value=10.0)))
    return net, paths, volumes


class TestFairnessProperties:
    @given(network_and_flows())
    @settings(max_examples=60, deadline=None)
    def test_capacity_feasibility(self, nf):
        """Allocated rates never exceed any link capacity."""
        net, paths, _ = nf
        rates = max_min_fair_rates(paths, net.capacities)
        load = np.zeros(net.num_links)
        for p, r in zip(paths, rates):
            if len(p):
                load[p] += r
        assert np.all(load <= net.capacities + 1e-6)

    @given(network_and_flows())
    @settings(max_examples=60, deadline=None)
    def test_rates_positive(self, nf):
        net, paths, _ = nf
        rates = max_min_fair_rates(paths, net.capacities)
        assert np.all(rates > 0)

    @given(network_and_flows())
    @settings(max_examples=60, deadline=None)
    def test_each_flow_hits_a_saturated_link(self, nf):
        """Max-min characterization: every flow crosses some link that is
        fully utilized (else its rate could rise)."""
        net, paths, _ = nf
        rates = max_min_fair_rates(paths, net.capacities)
        load = np.zeros(net.num_links)
        for p, r in zip(paths, rates):
            if len(p):
                load[p] += r
        saturated = load >= net.capacities - 1e-6
        for p in paths:
            if len(p):
                assert saturated[p].any()


class TestFluidProperties:
    @given(network_and_flows())
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, nf):
        """Makespan is at least the bottleneck-load bound and at most
        the serialized time."""
        net, paths, volumes = nf
        makespan, results = FluidSimulation(net, paths, volumes).run()
        lower = net.bottleneck_time(paths, volumes)
        assert makespan >= lower - 1e-6
        # Serial upper bound: each flow alone at its own bottleneck rate.
        serial = 0.0
        for p, v in zip(paths, volumes):
            cap = net.capacities[p].min() if len(p) else np.inf
            serial += v / cap
        assert makespan <= serial + 1e-6

    @given(network_and_flows())
    @settings(max_examples=40, deadline=None)
    def test_completions_increasing_in_volume(self, nf):
        """Doubling every volume doubles the makespan (fluid linearity)."""
        net, paths, volumes = nf
        m1, _ = FluidSimulation(net, paths, volumes).run()
        m2, _ = FluidSimulation(
            net, paths, [2 * v for v in volumes]
        ).run()
        assert m2 == __import__("pytest").approx(2 * m1, rel=1e-6)

    @given(network_and_flows())
    @settings(max_examples=40, deadline=None)
    def test_all_flows_complete(self, nf):
        net, paths, volumes = nf
        makespan, results = FluidSimulation(net, paths, volumes).run()
        assert len(results) == len(paths)
        for r in results:
            assert 0 < r.completion_time <= makespan + 1e-9


class TestRoutingProperties:
    @given(dims_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_route_is_valid_walk_of_minimal_length(self, dims, data):
        torus = Torus(dims)
        verts = list(torus.vertices())
        pick = st.integers(min_value=0, max_value=len(verts) - 1)
        src = verts[data.draw(pick)]
        dst = verts[data.draw(pick)]
        path = dimension_ordered_route(torus, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == torus.hop_distance(src, dst)
        for a, b in zip(path, path[1:]):
            assert b in {v for v, _ in torus.neighbors(a)}
