"""Property-based tests for fault-aware routing.

Oracle: brute-force BFS reachability over the *directed* surviving
links.  For any seeded ``FaultSet`` on a small torus,

* every route returned by :func:`fault_aware_route` must avoid failed
  links and failed nodes, and
* :class:`PartitionDisconnectedError` fires **iff** the oracle says the
  endpoints are disconnected in the surviving subgraph.

The hypothesis-driven sweep is marked ``chaos`` (opt-in via
``pytest -m chaos``); a fixed-seed smoke subset of the same invariants
runs in tier-1.
"""

from __future__ import annotations

import math
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultSet,
    midplane_drain,
    random_link_failures,
)
from repro.netsim.routing import (
    PartitionDisconnectedError,
    fault_aware_route,
    dimension_ordered_route,
)
from repro.topology.torus import Torus

dims_strategy = st.lists(
    st.integers(min_value=2, max_value=4), min_size=1, max_size=3
).map(tuple).filter(lambda d: math.prod(d) <= 32)


def _reachable(torus, faults, src, dst):
    """Brute-force BFS over usable directed links (the oracle)."""
    if faults.is_failed_node(src) or faults.is_failed_node(dst):
        return False
    seen = {src}
    queue = deque([src])
    while queue:
        u = queue.popleft()
        if u == dst:
            return True
        for v, _ in torus.neighbors(u):
            if v not in seen and not faults.blocks(u, v):
                seen.add(v)
                queue.append(v)
    return False


def _check_route_invariants(torus, faults, src, dst):
    """Route avoids faults iff reachable; else the typed error fires."""
    oracle = _reachable(torus, faults, src, dst)
    try:
        path = fault_aware_route(torus, src, dst, faults)
    except PartitionDisconnectedError as exc:
        assert not oracle, (
            f"route raised but oracle says {src} -> {dst} is reachable"
        )
        assert exc.src == src and exc.dst == dst
        return
    assert oracle, (
        f"route returned a path but oracle says {src} -> {dst} is cut"
    )
    assert path[0] == src and path[-1] == dst
    neighbors = {}
    for a, b in zip(path, path[1:]):
        assert not faults.blocks(a, b), f"route uses blocked link {a}->{b}"
        nbrs = neighbors.setdefault(a, {v for v, _ in torus.neighbors(a)})
        assert b in nbrs, f"route takes non-edge {a}->{b}"


@pytest.mark.chaos
class TestFaultRoutingChaos:
    """Randomized sweep over topologies, fault draws, and endpoints."""

    @given(
        dims_strategy,
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=2**16),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_route_matches_reachability_oracle(self, dims, k, seed, data):
        torus = Torus(dims)
        n_edges = sum(1 for _ in torus.edges())
        faults = random_link_failures(torus, min(k, n_edges), seed=seed)
        verts = list(torus.vertices())
        pick = st.integers(min_value=0, max_value=len(verts) - 1)
        src = verts[data.draw(pick)]
        dst = verts[data.draw(pick)]
        if src == dst:
            return
        _check_route_invariants(torus, faults, src, dst)

    @given(
        dims_strategy,
        st.integers(min_value=0, max_value=2**16),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_drained_slab_matches_oracle(self, dims, seed, data):
        torus = Torus(dims)
        dim = data.draw(st.integers(min_value=0, max_value=len(dims) - 1))
        coord = data.draw(st.integers(min_value=0, max_value=dims[dim] - 1))
        n_edges = sum(1 for _ in torus.edges())
        faults = midplane_drain(torus, dim, coord) | random_link_failures(
            torus, min(2, n_edges), seed=seed
        )
        verts = [v for v in torus.vertices() if not faults.is_failed_node(v)]
        if len(verts) < 2:
            return
        pick = st.integers(min_value=0, max_value=len(verts) - 1)
        src = verts[data.draw(pick)]
        dst = verts[data.draw(pick)]
        if src == dst:
            return
        _check_route_invariants(torus, faults, src, dst)


class TestFaultRoutingSmoke:
    """Fixed-seed subset of the chaos invariants; runs in tier-1."""

    CASES = [
        ((4, 4), 0, 0),
        ((4, 4), 3, 7),
        ((4, 4), 10, 11),
        ((2, 2, 4), 5, 3),
        ((8,), 1, 1),
        ((8,), 2, 5),
        ((3, 3), 6, 2),
    ]

    @pytest.mark.parametrize("dims,k,seed", CASES)
    def test_all_pairs_match_oracle(self, dims, k, seed):
        torus = Torus(dims)
        faults = random_link_failures(torus, k, seed=seed)
        verts = list(torus.vertices())
        for src in verts:
            for dst in verts:
                if src != dst:
                    _check_route_invariants(torus, faults, src, dst)

    def test_healthy_route_is_dor(self):
        torus = Torus((4, 4))
        for src in torus.vertices():
            for dst in torus.vertices():
                if src == dst:
                    continue
                assert fault_aware_route(
                    torus, src, dst, FaultSet()
                ) == dimension_ordered_route(torus, src, dst)
