"""Property-based tests (hypothesis) for the allocation engine."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.enumeration import factorizations_into_dims
from repro.allocation.geometry import PartitionGeometry
from repro.machines.bgq import BlueGeneQMachine, normalized_bisection_bandwidth

machine_dims = st.lists(
    st.integers(min_value=1, max_value=7), min_size=4, max_size=4
).map(tuple)

geometry_dims = st.lists(
    st.integers(min_value=1, max_value=8), min_size=1, max_size=4
).map(tuple)


class TestGeometryProperties:
    @given(geometry_dims)
    @settings(max_examples=100, deadline=None)
    def test_canonicalization_idempotent(self, dims):
        g = PartitionGeometry(dims)
        assert PartitionGeometry(g.dims) == g

    @given(geometry_dims)
    @settings(max_examples=100, deadline=None)
    def test_rotation_invariance(self, dims):
        g1 = PartitionGeometry(dims)
        g2 = PartitionGeometry(tuple(reversed(dims)))
        assert g1 == g2
        assert (
            g1.normalized_bisection_bandwidth
            == g2.normalized_bisection_bandwidth
        )

    @given(geometry_dims)
    @settings(max_examples=100, deadline=None)
    def test_bandwidth_formula_256_p_over_a1(self, dims):
        g = PartitionGeometry(dims)
        assert g.normalized_bisection_bandwidth == (
            256 * g.num_midplanes // g.longest_dim
        )

    @given(geometry_dims)
    @settings(max_examples=60, deadline=None)
    def test_bandwidth_from_torus_cut(self, dims):
        g = PartitionGeometry(dims)
        assert (
            g.network().bisection_width()
            == g.normalized_bisection_bandwidth
        )


class TestFactorizationProperties:
    @given(st.integers(min_value=1, max_value=96))
    @settings(max_examples=60, deadline=None)
    def test_all_products_correct_and_unique(self, n):
        fs = list(factorizations_into_dims(n, 4))
        assert len(fs) == len(set(fs))
        for f in fs:
            assert math.prod(f) == n
            assert list(f) == sorted(f, reverse=True)

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_complete_against_brute_force(self, n):
        """Every descending 4-tuple with product n is generated."""
        brute = {
            (a, b, c, d)
            for a in range(1, n + 1)
            for b in range(1, a + 1)
            for c in range(1, b + 1)
            for d in range(1, c + 1)
            if a * b * c * d == n
        }
        assert set(factorizations_into_dims(n, 4)) == brute


class TestMachineProperties:
    @given(machine_dims)
    @settings(max_examples=60, deadline=None)
    def test_machine_fits_itself_and_unit(self, dims):
        m = BlueGeneQMachine("X", dims)
        assert m.fits(dims)
        assert m.fits((1, 1, 1, 1))

    @given(machine_dims, geometry_dims)
    @settings(max_examples=100, deadline=None)
    def test_fits_is_sorted_componentwise(self, mdims, gdims):
        m = BlueGeneQMachine("X", mdims)
        g = PartitionGeometry(gdims)
        expected = all(
            a <= b for a, b in zip(g.dims, m.midplane_dims)
        )
        assert g.fits_in(m) == expected

    @given(machine_dims)
    @settings(max_examples=40, deadline=None)
    def test_machine_bisection_matches_geometry_formula(self, dims):
        m = BlueGeneQMachine("X", dims)
        assert m.bisection_bandwidth() == normalized_bisection_bandwidth(
            dims
        )
