"""Property-based tests (hypothesis) for the isoperimetric core."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isoperimetry.bounds import torus_isoperimetric_bound
from repro.isoperimetry.cuboids import (
    best_cuboid,
    cuboid_interior,
    cuboid_perimeter,
    cuboid_vertices,
    enumerate_cuboid_shapes,
    worst_cuboid,
)
from repro.isoperimetry.harper import harper_min_boundary
from repro.isoperimetry.lindsey import lindsey_min_boundary
from repro.topology.torus import Torus

# Small torus dimension tuples (products kept modest for speed).
small_dims = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=3
).map(tuple).filter(lambda d: 2 <= math.prod(d) <= 64)

proper_dims = st.lists(
    st.integers(min_value=3, max_value=6), min_size=1, max_size=3
).map(tuple).filter(lambda d: math.prod(d) <= 125)


@st.composite
def dims_and_shape(draw):
    """A torus (sorted desc) plus a cuboid shape inside it."""
    dims = tuple(
        sorted(draw(small_dims), reverse=True)
    )
    shape = tuple(
        draw(st.integers(min_value=1, max_value=a)) for a in dims
    )
    return dims, shape


class TestCuboidCounting:
    @given(dims_and_shape())
    @settings(max_examples=80, deadline=None)
    def test_perimeter_matches_graph_cut(self, ds):
        dims, shape = ds
        torus = Torus(dims)
        verts = set(cuboid_vertices(shape))
        assert torus.cut_weight(verts) == cuboid_perimeter(dims, shape)

    @given(dims_and_shape())
    @settings(max_examples=80, deadline=None)
    def test_interior_matches_graph(self, ds):
        dims, shape = ds
        torus = Torus(dims)
        verts = set(cuboid_vertices(shape))
        assert torus.interior_weight(verts) == cuboid_interior(dims, shape)

    @given(dims_and_shape())
    @settings(max_examples=80, deadline=None)
    def test_handshake_identity(self, ds):
        """k |S| = 2 interior + perimeter (Equation 1)."""
        dims, shape = ds
        k = Torus(dims).regular_degree()
        vol = math.prod(shape)
        assert k * vol == 2 * cuboid_interior(dims, shape) + cuboid_perimeter(
            dims, shape
        )


class TestBoundProperties:
    @given(proper_dims, st.data())
    @settings(max_examples=60, deadline=None)
    def test_bound_below_every_cuboid(self, dims, data):
        total = math.prod(dims)
        t = data.draw(st.integers(min_value=1, max_value=total // 2))
        shapes = list(enumerate_cuboid_shapes(dims, t))
        if not shapes:
            return
        _, per = best_cuboid(dims, t)
        bound = torus_isoperimetric_bound(dims, t).value
        assert bound <= per + 1e-9

    @given(proper_dims, st.data())
    @settings(max_examples=60, deadline=None)
    def test_best_not_worse_than_worst(self, dims, data):
        total = math.prod(dims)
        t = data.draw(st.integers(min_value=1, max_value=total // 2))
        if not list(enumerate_cuboid_shapes(dims, t)):
            return
        _, best = best_cuboid(dims, t)
        _, worst = worst_cuboid(dims, t)
        assert best <= worst

    @given(proper_dims)
    @settings(max_examples=40, deadline=None)
    def test_bound_positive_below_half(self, dims):
        total = math.prod(dims)
        t = max(1, total // 2)
        assert torus_isoperimetric_bound(dims, t).value > 0


class TestComplementSymmetry:
    @given(small_dims, st.data())
    @settings(max_examples=60, deadline=None)
    def test_cut_of_complement_equal(self, dims, data):
        torus = Torus(dims)
        n = torus.num_vertices
        verts = list(torus.vertices())
        size = data.draw(st.integers(min_value=0, max_value=n))
        idx = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size,
            )
        )
        subset = {verts[i] for i in idx}
        complement = set(verts) - subset
        assert torus.cut_weight(subset) == torus.cut_weight(complement)


class TestClosedFormSolutions:
    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_harper_monotone_up_to_half(self, d, data):
        """Optimal boundary is nondecreasing in t up to |V|/2."""
        half = 1 << (d - 1) if d >= 1 else 1
        t = data.draw(st.integers(min_value=1, max_value=max(1, half - 1)))
        assert harper_min_boundary(d, t + 1) >= harper_min_boundary(
            d, t
        ) - 2 * d  # local decrease bounded by degree

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_harper_complement_symmetry(self, d, data):
        n = 1 << d
        t = data.draw(st.integers(min_value=1, max_value=n - 1))
        assert harper_min_boundary(d, t) == harper_min_boundary(d, n - t)

    @given(
        st.lists(
            st.integers(min_value=2, max_value=5), min_size=1, max_size=3
        ).map(tuple).filter(lambda d: math.prod(d) <= 60),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_lindsey_complement_symmetry(self, dims, data):
        total = math.prod(dims)
        t = data.draw(st.integers(min_value=1, max_value=total - 1))
        assert lindsey_min_boundary(dims, t) == lindsey_min_boundary(
            dims, total - t
        )
