"""Property-based tests (hypothesis) for topology invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.clique_product import CliqueProduct
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

torus_dims = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=3
).map(tuple).filter(lambda d: math.prod(d) <= 72)


class TestTorusInvariants:
    @given(torus_dims)
    @settings(max_examples=50, deadline=None)
    def test_structural_validation(self, dims):
        Torus(dims).validate()

    @given(torus_dims)
    @settings(max_examples=50, deadline=None)
    def test_handshake(self, dims):
        t = Torus(dims)
        assert sum(t.degree(v) for v in t.vertices()) == 2 * t.num_edges

    @given(torus_dims, st.data())
    @settings(max_examples=50, deadline=None)
    def test_distance_metric_axioms(self, dims, data):
        t = Torus(dims)
        verts = list(t.vertices())
        pick = st.integers(min_value=0, max_value=len(verts) - 1)
        u = verts[data.draw(pick)]
        v = verts[data.draw(pick)]
        w = verts[data.draw(pick)]
        duv = t.hop_distance(u, v)
        assert duv == t.hop_distance(v, u)
        assert (duv == 0) == (u == v)
        assert duv <= t.hop_distance(u, w) + t.hop_distance(w, v)
        assert duv <= t.diameter

    @given(torus_dims)
    @settings(max_examples=50, deadline=None)
    def test_antipode_maximizes_distance(self, dims):
        t = Torus(dims)
        origin = tuple(0 for _ in dims)
        anti = t.antipode(origin)
        assert t.hop_distance(origin, anti) == t.diameter


class TestCrossFamilyConsistency:
    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_hypercube_equals_2_torus(self, d):
        q = Hypercube(d)
        t = Torus((2,) * d)
        assert q.num_edges == t.num_edges
        assert q.diameter == t.diameter
        assert q.bisection_width() == t.bisection_width()

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_ring_equals_k_for_tiny(self, a):
        """Rings of length 2 and 3 coincide with K2/K3; longer rings
        have strictly fewer edges than the clique."""
        ring = Torus((a,))
        clique = CliqueProduct((a,))
        if a <= 3:
            assert ring.num_edges == clique.num_edges
        else:
            assert ring.num_edges < clique.num_edges

    @given(torus_dims)
    @settings(max_examples=30, deadline=None)
    def test_mesh_has_no_more_edges_than_torus(self, dims):
        assert Mesh(dims).num_edges <= Torus(dims).num_edges
