"""Unit tests for the fault-tolerant sweep executor.

Covers the :mod:`repro.resilience` layer: policy validation, task key
hashing, the JSONL checkpoint journal, retry/quarantine semantics on
both the serial and pool paths, worker-crash recovery, per-task
timeouts, and checkpoint/resume determinism.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

import pytest

from repro import observability
from repro.parallel import sweep_map
from repro.resilience import (
    ResiliencePolicy,
    SweepCheckpoint,
    TaskFailure,
    resilient_sweep_map,
    task_key,
)


# ---------------------------------------------------------------------
# Module-level task functions (must be picklable for the pool path).


def _square(x):
    return x * x


def _boom(task):
    value, poison = task
    if value == poison:
        raise RuntimeError(f"poison task {value}")
    return value * 10


def _flaky(task):
    """Fail the first *fail_times* attempts, counted via the filesystem.

    The attempt files survive process boundaries (pool workers) and
    sweep restarts, so tests can both inject transient failures and
    count how often each task actually executed.
    """
    value, fail_times, attempts_dir = task
    p = Path(attempts_dir) / f"{value}.attempts"
    n = int(p.read_text()) if p.exists() else 0
    p.write_text(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"transient failure #{n} of task {value}")
    return value * 10


def _sleepy(task):
    value, sleep_s = task
    time.sleep(sleep_s)
    return value


def _attempt_counts(attempts_dir) -> dict[int, int]:
    return {
        int(p.stem): int(p.read_text())
        for p in Path(attempts_dir).glob("*.attempts")
    }


@pytest.fixture
def obs_state():
    """Enable observability for one test; restore the prior state."""
    was_enabled = observability.enabled()
    observability.enable()
    observability.reset()
    yield observability.OBS
    observability.OBS.enabled = was_enabled
    observability.reset()


FAST = dict(backoff_base=0.0, backoff_max=0.0)


# ---------------------------------------------------------------------


class TestResiliencePolicy:
    def test_defaults(self):
        p = ResiliencePolicy()
        assert p.max_retries == 2
        assert p.task_timeout is None
        assert not p.quarantine

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(task_timeout=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(task_timeout=-1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_pool_rebuilds=-1)

    def test_backoff_doubles_and_caps(self):
        p = ResiliencePolicy(backoff_base=0.1, backoff_max=0.35)
        assert p.backoff(1) == pytest.approx(0.1)
        assert p.backoff(2) == pytest.approx(0.2)
        assert p.backoff(3) == pytest.approx(0.35)  # capped
        assert p.backoff(10) == pytest.approx(0.35)


class TestTaskKey:
    def test_deterministic(self):
        t = ((4, 4), 3, 7, 1003, 2.0, "parity")
        assert task_key(t) == task_key(((4, 4), 3, 7, 1003, 2.0, "parity"))

    def test_distinct_tasks_distinct_keys(self):
        keys = {task_key((i, "x")) for i in range(100)}
        assert len(keys) == 100

    def test_hex_sha256(self):
        k = task_key((1, 2))
        assert len(k) == 64
        int(k, 16)  # hex-parsable


class TestSweepCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.fn", 3)
        ck.record("k0", 0, {"bw": 1.5})
        ck.record("k2", 2, (7, "x"))
        ck.close()
        loaded = SweepCheckpoint(path).load("mod.fn")
        assert loaded == {"k0": {"bw": 1.5}, "k2": (7, "x")}

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepCheckpoint(tmp_path / "nope.jsonl").load("f") == {}

    def test_fn_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.other_fn", 1)
        ck.record("k0", 0, 42)
        ck.close()
        with pytest.raises(ValueError, match="refusing to resume"):
            SweepCheckpoint(path).load("mod.fn")

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.fn", 2)
        ck.record("k0", 0, 11)
        ck.close()
        with path.open("a") as fh:
            fh.write('{"type": "task", "key": "k1", "resu')  # torn write
        assert SweepCheckpoint(path).load("mod.fn") == {"k0": 11}

    def test_corrupt_result_payload_skipped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.fn", 2)
        ck.record("k0", 0, 11)
        ck.close()
        with path.open("a") as fh:
            fh.write(json.dumps({
                "type": "task", "key": "k1", "index": 1,
                "result": "bm90LXBpY2tsZQ==",  # not a pickle
            }) + "\n")
        assert SweepCheckpoint(path).load("mod.fn") == {"k0": 11}

    def test_reopen_does_not_duplicate_header(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        for _ in range(2):
            ck = SweepCheckpoint(path)
            ck.open_for_append("mod.fn", 2)
            ck.close()
        headers = [
            line for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "header"
        ]
        assert len(headers) == 1

    def _torn_header_file(self, tmp_path):
        """A journal whose header was mangled mid-write but whose task
        records are intact (the killed-during-first-write scenario)."""
        path = tmp_path / "ckpt.jsonl"
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.fn", 2)
        ck.record("k0", 0, 11)
        ck.record("k1", 1, 22)
        ck.close()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "header"
        lines[0] = lines[0][: len(lines[0]) // 2]  # tear the header
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_torn_header_skips_records_with_warning(self, tmp_path):
        """Regression: a torn header must not degrade into 'no fn
        validation' — records that cannot be attributed to a task
        function are recomputed, not silently resumed."""
        path = self._torn_header_file(tmp_path)
        with pytest.warns(RuntimeWarning, match="before any valid header"):
            loaded = SweepCheckpoint(path).load("mod.fn")
        assert loaded == {}

    def test_torn_header_never_resumes_other_functions(self, tmp_path):
        """The bug this pins down: with the header gone, records from
        *any* function's journal would previously load under any
        fn_name whose task keys collided."""
        path = self._torn_header_file(tmp_path)
        with pytest.warns(RuntimeWarning, match="recomputed"):
            loaded = SweepCheckpoint(path).load("other_mod.other_fn")
        assert loaded == {}

    def test_torn_header_self_heals_on_append(self, tmp_path):
        """open_for_append writes a fresh header over a torn one: the
        old headerless records stay dead, new records resume."""
        path = self._torn_header_file(tmp_path)
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.fn", 2)
        ck.record("k9", 0, 99)
        ck.close()
        with pytest.warns(RuntimeWarning, match="before any valid header"):
            loaded = SweepCheckpoint(path).load("mod.fn")
        assert loaded == {"k9": 99}
        # And the healed header validates the function name again.
        with pytest.raises(ValueError, match="refusing to resume"):
            SweepCheckpoint(path).load("other_mod.other_fn")

    def test_records_after_valid_header_still_load(self, tmp_path):
        """The gate keys on a *valid* header, wherever it sits — blank
        and torn lines before it do not poison the journal."""
        path = tmp_path / "ckpt.jsonl"
        ck = SweepCheckpoint(path)
        ck.open_for_append("mod.fn", 2)
        ck.record("k0", 0, 11)
        ck.close()
        content = path.read_text()
        path.write_text('\n{"type": "ta\n' + content)
        assert SweepCheckpoint(path).load("mod.fn") == {"k0": 11}


class TestSerialResilience:
    def test_plain_results_match_sweep_map(self):
        tasks = list(range(6))
        assert resilient_sweep_map(_square, tasks) == sweep_map(
            _square, tasks
        )

    def test_retry_recovers_transient_failures(self, tmp_path):
        tasks = [(i, 2 if i == 1 else 0, str(tmp_path)) for i in range(3)]
        out = resilient_sweep_map(
            _flaky, tasks,
            policy=ResiliencePolicy(max_retries=2, **FAST),
        )
        assert out == [0, 10, 20]
        # Task 1 ran 3 times (2 transient failures + 1 success).
        assert _attempt_counts(tmp_path) == {0: 1, 1: 3, 2: 1}

    def test_exhausted_retries_raise_by_default(self, tmp_path):
        tasks = [(0, 99, str(tmp_path))]  # always fails
        with pytest.raises(RuntimeError, match="transient failure"):
            resilient_sweep_map(
                _flaky, tasks,
                policy=ResiliencePolicy(max_retries=1, **FAST),
            )
        assert _attempt_counts(tmp_path) == {0: 2}  # 1 + 1 retry

    def test_quarantine_yields_task_failure_in_place(self, tmp_path):
        tasks = [(i, 99 if i == 1 else 0, str(tmp_path)) for i in range(3)]
        out = resilient_sweep_map(
            _flaky, tasks,
            policy=ResiliencePolicy(
                max_retries=1, quarantine=True, **FAST
            ),
        )
        assert out[0] == 0 and out[2] == 20
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 1
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2

    def test_zero_retries_fail_immediately(self, tmp_path):
        tasks = [(0, 99, str(tmp_path))]
        with pytest.raises(RuntimeError):
            resilient_sweep_map(
                _flaky, tasks,
                policy=ResiliencePolicy(max_retries=0, **FAST),
            )
        assert _attempt_counts(tmp_path) == {0: 1}

    def test_counters_surface_retries_and_quarantine(
        self, tmp_path, obs_state
    ):
        tasks = [(0, 1, str(tmp_path)), (1, 99, str(tmp_path))]
        resilient_sweep_map(
            _flaky, tasks,
            policy=ResiliencePolicy(
                max_retries=1, quarantine=True, **FAST
            ),
        )
        assert obs_state.counters["resilience.retries"] >= 2
        assert obs_state.counters["resilience.quarantined"] == 1
        assert obs_state.counters["resilience.sweeps"] == 1
        assert obs_state.counters["resilience.tasks"] == 2


class TestCheckpointResume:
    def test_full_resume_skips_all_tasks(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = [(i, 0, str(tmp_path)) for i in range(4)]
        first = resilient_sweep_map(_flaky, tasks, checkpoint=ckpt)
        second = resilient_sweep_map(_flaky, tasks, checkpoint=ckpt)
        assert first == second == [0, 10, 20, 30]
        # Nothing re-executed on resume.
        assert _attempt_counts(tmp_path) == {i: 1 for i in range(4)}

    def test_partial_resume_recomputes_only_missing(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = [(i, 0, str(tmp_path)) for i in range(5)]
        full = resilient_sweep_map(_flaky, tasks, checkpoint=ckpt)
        # Simulate a mid-sweep kill: keep header + first 2 task records.
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:3]) + "\n")
        resumed = resilient_sweep_map(_flaky, tasks, checkpoint=ckpt)
        assert resumed == full
        counts = _attempt_counts(tmp_path)
        assert sorted(counts.values()) == [1, 1, 2, 2, 2]

    def test_resumed_counter(self, tmp_path, obs_state):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = [(i, 0, str(tmp_path)) for i in range(3)]
        resilient_sweep_map(_flaky, tasks, checkpoint=ckpt)
        observability.reset()
        resilient_sweep_map(_flaky, tasks, checkpoint=ckpt)
        assert obs_state.counters["resilience.resumed_tasks"] == 3

    def test_checkpoint_from_other_function_rejected(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        resilient_sweep_map(_square, [1, 2], checkpoint=ckpt)
        with pytest.raises(ValueError, match="refusing to resume"):
            resilient_sweep_map(
                _flaky, [(0, 0, str(tmp_path))], checkpoint=ckpt
            )

    def test_checkpoint_from_other_grid_misses_cleanly(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        resilient_sweep_map(_square, [1, 2], checkpoint=ckpt)
        # Same function, disjoint task grid: every key misses.
        out = resilient_sweep_map(_square, [7, 8, 9], checkpoint=ckpt)
        assert out == [49, 64, 81]

    def test_failures_never_checkpointed(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = [(i, 99 if i == 1 else 0, str(tmp_path)) for i in range(3)]
        resilient_sweep_map(
            _flaky, tasks, checkpoint=ckpt,
            policy=ResiliencePolicy(
                max_retries=0, quarantine=True, **FAST
            ),
        )
        records = [
            json.loads(line) for line in ckpt.read_text().splitlines()
        ]
        task_records = [r for r in records if r["type"] == "task"]
        assert len(task_records) == 2  # the poison slot is absent
        assert {r["index"] for r in task_records} == {0, 2}
        # The resumed run retries the poison task (and it fails again,
        # because fail_times=99 ignores the accumulated attempts).
        out = resilient_sweep_map(
            _flaky, tasks, checkpoint=ckpt,
            policy=ResiliencePolicy(
                max_retries=0, quarantine=True, **FAST
            ),
        )
        assert isinstance(out[1], TaskFailure)


class TestPoolResilience:
    @pytest.fixture(autouse=True)
    def force_pool(self, monkeypatch):
        """Pretend to have CPUs: the pool path must run even on a
        single-core runner, where the cap would silently serialize
        (and the serial kill hook would take pytest down with it)."""
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 4)

    def test_parallel_matches_serial(self):
        tasks = list(range(8))
        serial = resilient_sweep_map(_square, tasks, jobs=1)
        parallel = resilient_sweep_map(_square, tasks, jobs=2)
        assert parallel == serial

    def test_parallel_exception_propagates(self):
        with pytest.raises(RuntimeError, match="poison task 2"):
            resilient_sweep_map(
                _boom, [(i, 2) for i in range(4)], jobs=2,
                policy=ResiliencePolicy(max_retries=0, **FAST),
            )

    def test_parallel_retry_recovers(self, tmp_path):
        tasks = [(i, 1 if i == 2 else 0, str(tmp_path)) for i in range(4)]
        out = resilient_sweep_map(
            _flaky, tasks, jobs=2,
            policy=ResiliencePolicy(max_retries=2, **FAST),
        )
        assert out == [0, 10, 20, 30]
        assert _attempt_counts(tmp_path)[2] == 2

    def test_parallel_quarantine(self, tmp_path):
        tasks = [(i, 99 if i == 0 else 0, str(tmp_path)) for i in range(4)]
        out = resilient_sweep_map(
            _flaky, tasks, jobs=2,
            policy=ResiliencePolicy(
                max_retries=1, quarantine=True, **FAST
            ),
        )
        assert isinstance(out[0], TaskFailure)
        assert out[1:] == [10, 20, 30]

    def test_worker_crash_rebuilds_pool(
        self, tmp_path, monkeypatch, obs_state
    ):
        """A worker hard-killed mid-task triggers rebuild + resubmit."""
        marker = tmp_path / "kill.marker"
        monkeypatch.setenv("REPRO_RESILIENCE_TEST_KILL", "2")
        monkeypatch.setenv(
            "REPRO_RESILIENCE_TEST_KILL_MARKER", str(marker)
        )
        tasks = list(range(6))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            out = resilient_sweep_map(_square, tasks, jobs=2)
        assert out == [i * i for i in tasks]
        assert marker.exists()
        assert obs_state.counters["resilience.pool_rebuilds"] >= 1

    def test_timeout_quarantines_stuck_task(self, obs_state):
        tasks = [(0, 0.0), (1, 3.0)]  # task 1 sleeps past the budget
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            out = resilient_sweep_map(
                _sleepy, tasks, jobs=2,
                policy=ResiliencePolicy(
                    max_retries=0, task_timeout=0.3,
                    quarantine=True, **FAST
                ),
            )
        assert out[0] == 0
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "TimeoutError"
        assert obs_state.counters["resilience.timeouts"] >= 1

    def test_checkpoint_works_under_pool(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = [(i, 0, str(tmp_path)) for i in range(6)]
        first = resilient_sweep_map(
            _flaky, tasks, jobs=2, checkpoint=ckpt
        )
        second = resilient_sweep_map(
            _flaky, tasks, jobs=2, checkpoint=ckpt
        )
        assert first == second
        assert _attempt_counts(tmp_path) == {i: 1 for i in range(6)}


class TestSweepMapIntegration:
    def test_sweep_map_policy_routes_to_resilience(self, tmp_path):
        tasks = [(i, 1 if i == 0 else 0, str(tmp_path)) for i in range(3)]
        out = sweep_map(
            _flaky, tasks,
            policy=ResiliencePolicy(max_retries=1, **FAST),
        )
        assert out == [0, 10, 20]

    def test_sweep_map_checkpoint_routes_to_resilience(self, tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        assert sweep_map(_square, [1, 2, 3], checkpoint=ckpt) == [1, 4, 9]
        assert ckpt.exists()
        assert sweep_map(_square, [1, 2, 3], checkpoint=ckpt) == [1, 4, 9]

    def test_sweep_map_plain_path_unchanged(self):
        # No policy/checkpoint: the fast path, no checkpoint side files.
        assert sweep_map(_square, [1, 2, 3]) == [1, 4, 9]


# ---------------------------------------------------------------------
# Shared-memory transport on the resilient pool path.


def _big_result(x):
    import numpy as np

    rng = np.random.default_rng(x)
    return rng.random(9000)  # 72 KB: clears MIN_SHARED_BYTES


def _big_result_block(xs):
    return [_big_result(x) for x in xs]


class TestShmTransport:
    """Checkpoints journal result *contents*, never segment names, and
    every dispatch generation's segments are reclaimed."""

    @pytest.fixture
    def big_runner(self):
        from repro.parallel import (
            register_block_runner,
            unregister_block_runner,
        )

        register_block_runner(_big_result, _big_result_block)
        yield
        unregister_block_runner(_big_result)

    def test_checkpoint_journals_contents_not_segments(
        self, tmp_path, big_runner, monkeypatch
    ):
        import numpy as np

        import repro.resilience as resilience
        from repro import sharedmem

        if not sharedmem.shm_supported():
            pytest.skip("shared memory unusable here")
        monkeypatch.setattr(resilience.os, "cpu_count", lambda: 2)
        ckpt = tmp_path / "ckpt.jsonl"
        tasks = list(range(40))  # above the small-sweep serial cutoff
        out = resilient_sweep_map(
            _big_result, tasks, jobs=2, checkpoint=ckpt, transport="shm"
        )
        assert sharedmem.active_segments() == []
        text = ckpt.read_text()
        assert sharedmem.SEGMENT_PREFIX not in text
        # The journal is self-contained: a resume in a world where the
        # segments are long gone reproduces the results bit-identically.
        resumed = resilient_sweep_map(
            _big_result, tasks, jobs=1, checkpoint=ckpt
        )
        for a, b in zip(out, resumed):
            assert np.array_equal(a, b)

    def test_shm_matches_pickle_transport(self, big_runner, monkeypatch):
        import numpy as np

        import repro.resilience as resilience
        from repro import sharedmem

        if not sharedmem.shm_supported():
            pytest.skip("shared memory unusable here")
        monkeypatch.setattr(resilience.os, "cpu_count", lambda: 2)
        tasks = list(range(40))
        shm = resilient_sweep_map(
            _big_result, tasks, jobs=2, transport="shm"
        )
        plain = resilient_sweep_map(
            _big_result, tasks, jobs=2, transport="pickle"
        )
        for a, b in zip(shm, plain):
            assert np.array_equal(a, b)
        assert sharedmem.active_segments() == []
