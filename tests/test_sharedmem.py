"""Unit tests for the zero-copy shared-memory transport.

Covers :mod:`repro.sharedmem`: descriptor/payload round-trips, the slab
pool's packing and lifecycle discipline, registered codecs
(``PathMatrix``/``StackedPathMatrix`` travel as descriptor handles),
the ``REPRO_SHM`` knob, worker-result encoding, and the no-leak
invariant every exit path must uphold.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import sharedmem
from repro.sharedmem import (
    ArrayDescriptor,
    SharedArrayPool,
    ShmPayload,
    attach_array,
    decode_result,
    maybe_shm_dumps,
    release_payload,
    resolve_transport,
    shm_loads,
)

pytestmark = pytest.mark.skipif(
    not sharedmem.shm_supported(),
    reason="multiprocessing.shared_memory unusable on this platform",
)


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = sharedmem.active_segments()
    yield
    sharedmem.detach_segments()
    assert sharedmem.active_segments() == before


class TestKnobs:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert sharedmem.shm_enabled()

    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", " OFF "])
    def test_disabling_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHM", raw)
        assert not sharedmem.shm_enabled()

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "weird"])
    def test_other_values_keep_it_on(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SHM", raw)
        assert sharedmem.shm_enabled()

    def test_resolve_auto_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert resolve_transport(None) == "shm"
        assert resolve_transport("auto") == "shm"
        monkeypatch.setenv("REPRO_SHM", "0")
        assert resolve_transport(None) == "pickle"
        assert resolve_transport("auto") == "pickle"

    def test_resolve_explicit_shm_ignores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert resolve_transport("shm") == "shm"

    def test_resolve_pickle_always_honored(self):
        assert resolve_transport("pickle") == "pickle"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="transport"):
            resolve_transport("carrier-pigeon")


class TestPool:
    def test_put_array_round_trip(self):
        arr = np.arange(5000, dtype=np.float64).reshape(50, 100)
        with SharedArrayPool() as pool:
            desc = pool.put_array(arr)
            assert desc.dtype == arr.dtype.str
            assert desc.shape == (50, 100)
            out = attach_array(desc)
            assert np.array_equal(out, arr)
            assert not out.flags.writeable  # zero-copy views are RO
            del out
            sharedmem.detach_segments()

    def test_zero_length_array_needs_no_segment(self):
        with SharedArrayPool() as pool:
            desc = pool.put_array(np.empty((0, 3), dtype=np.int32))
            assert desc.segment == ""
            out = attach_array(desc)
            assert out.shape == (0, 3)
            assert pool.segment_names == []

    def test_object_dtype_rejected(self):
        with SharedArrayPool() as pool:
            with pytest.raises(TypeError, match="object-dtype"):
                pool.put_array(np.array([{"a": 1}], dtype=object))

    def test_small_buffers_pack_into_one_slab(self):
        with SharedArrayPool(slab_bytes=1 << 20) as pool:
            descs = [
                pool.put_array(np.arange(100, dtype=np.int64))
                for _ in range(10)
            ]
            assert len({d.segment for d in descs}) == 1
            # 64-byte alignment between packed buffers.
            assert all(d.offset % 64 == 0 for d in descs)

    def test_oversized_buffer_gets_dedicated_segment(self):
        with SharedArrayPool(slab_bytes=4096) as pool:
            small = pool.put_array(np.arange(8, dtype=np.int8))
            big = pool.put_array(np.zeros(10000, dtype=np.int8))
            assert small.segment != big.segment
            assert big.offset == 0

    def test_bytes_used_accounting(self):
        with SharedArrayPool() as pool:
            pool.put_array(np.zeros(1000, dtype=np.float64))
            assert pool.bytes_used == 8000

    def test_unlink_destroys_segments(self):
        pool = SharedArrayPool()
        pool.put_array(np.arange(10))
        names = pool.segment_names
        assert names
        pool.unlink()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=names[0])

    def test_context_manager_unlinks_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArrayPool() as pool:
                pool.put_array(np.arange(100))
                raise RuntimeError("boom")
        assert sharedmem.active_segments() == []

    def test_finalizer_reclaims_leaked_pool(self):
        pool = SharedArrayPool()
        pool.put_array(np.arange(100))
        assert sharedmem.active_segments()
        del pool  # no explicit unlink: the GC safety net must fire
        import gc

        gc.collect()
        assert sharedmem.active_segments() == []

    def test_rejects_bad_slab_bytes(self):
        with pytest.raises(ValueError, match="slab_bytes"):
            SharedArrayPool(slab_bytes=0)


class TestDumpsLoads:
    def test_round_trip_mixed_payload(self):
        obj = {
            "big": np.arange(100_000, dtype=np.float64),
            "small": np.arange(4),
            "meta": ("label", 7),
        }
        with SharedArrayPool() as pool:
            payload = pool.dumps(obj)
            assert isinstance(payload, ShmPayload)
            # Only the big array cleared MIN_SHARED_BYTES.
            assert len(payload.buffers) == 1
            assert len(payload.data) < 2000
            out = shm_loads(payload)
            assert np.array_equal(out["big"], obj["big"])
            assert np.array_equal(out["small"], obj["small"])
            assert out["meta"] == ("label", 7)
            assert not out["big"].flags.writeable
            del out
            sharedmem.detach_segments()

    def test_copy_true_materializes_owned_bytes(self):
        arr = np.arange(100_000, dtype=np.float64)
        with SharedArrayPool() as pool:
            payload = pool.dumps({"x": arr})
            out = shm_loads(payload, copy=True)
        # Pool unlinked; the copied result must stay valid and mutable.
        assert np.array_equal(out["x"], arr)
        out["x"][0] = -1.0

    def test_non_payload_passes_through(self):
        assert shm_loads([1, 2, 3]) == [1, 2, 3]
        assert shm_loads(None) is None

    def test_min_bytes_threshold(self):
        arr = np.arange(1000, dtype=np.float64)  # 8 KB
        with SharedArrayPool() as pool:
            inband = pool.dumps({"x": arr})
            assert inband.buffers == ()
            offband = pool.dumps({"x": arr}, min_bytes=1024)
            assert len(offband.buffers) == 1

    def test_bit_identical_to_plain_pickle(self):
        """The transport is an encoding, not a transformation."""
        rng = np.random.default_rng(7)
        obj = {"a": rng.random(50_000), "b": rng.integers(0, 9, 20_000)}
        with SharedArrayPool() as pool:
            via_shm = shm_loads(pool.dumps(obj), copy=True)
        via_pickle = pickle.loads(pickle.dumps(obj, protocol=5))
        assert np.array_equal(via_shm["a"], via_pickle["a"])
        assert np.array_equal(via_shm["b"], via_pickle["b"])


class TestCodecs:
    def test_pathmatrix_travels_as_descriptors(self):
        from repro.netsim.batchroute import PathMatrix

        pm = PathMatrix.from_paths(
            [[i % 5, (i + 1) % 5] for i in range(30_000)]
        )
        with SharedArrayPool() as pool:
            payload = pool.dumps({"pm": pm})
            # Codec reduction: arrays became in-stream descriptors, not
            # out-of-band pickle buffers.
            assert payload.buffers == ()
            assert len(payload.data) < 2000
            out = shm_loads(payload)["pm"]
            assert np.array_equal(out._link_ids, pm._link_ids)
            assert np.array_equal(out._offsets, pm._offsets)
            assert not out._link_ids.flags.writeable
            del out
            sharedmem.detach_segments()

    def test_stacked_travels_as_descriptors(self):
        from repro.netsim.batchroute import PathMatrix
        from repro.netsim.stacked import StackedPathMatrix

        pm = PathMatrix.from_paths(
            [[i % 5, (i + 2) % 5] for i in range(20_000)]
        )
        caps = np.ones(5)
        active = np.ones(20_000, dtype=bool)
        stack = StackedPathMatrix.from_scenarios([(pm, caps, active)] * 2)
        with SharedArrayPool() as pool:
            payload = pool.dumps(stack)
            assert payload.buffers == ()
            out = shm_loads(payload)
            for slot in (
                "link_ids", "offsets", "flow_base", "link_base",
                "capacities", "active", "flow_scenarios",
            ):
                assert np.array_equal(
                    getattr(out, f"_{slot}"), getattr(stack, f"_{slot}")
                ), slot
            del out
            sharedmem.detach_segments()

    def test_codecs_flag_disables_reduction(self):
        from repro.netsim.batchroute import PathMatrix

        pm = PathMatrix.from_paths(
            [[i % 5, (i + 1) % 5] for i in range(30_000)]
        )
        with SharedArrayPool() as pool:
            payload = pool.dumps({"pm": pm}, codecs=False)
            out = shm_loads(payload, copy=True)["pm"]
        # Pool gone: a codec-free payload must have owned its bytes.
        assert np.array_equal(out._link_ids, pm._link_ids)

    def test_register_requires_methods(self):
        class NoCodec:
            pass

        with pytest.raises(TypeError, match="to_shared"):
            sharedmem.register_shared_codec(NoCodec)


class TestResultEncoding:
    def test_small_results_stay_plain(self):
        values = [1.5, (2, "x"), {"k": 3}]
        assert maybe_shm_dumps(values) is values

    def test_large_results_offload_and_decode(self):
        values = [np.arange(50_000, dtype=np.float64), "tag"]
        payload = maybe_shm_dumps(values)
        assert isinstance(payload, ShmPayload)
        out = decode_result(payload)
        assert np.array_equal(out[0], values[0])
        assert out[1] == "tag"
        # decode_result released the worker segments.
        assert sharedmem.active_segments() == []

    def test_decode_passes_plain_through(self):
        assert decode_result([1, 2]) == [1, 2]

    def test_release_payload_idempotent(self):
        payload = maybe_shm_dumps([np.arange(50_000, dtype=np.float64)])
        release_payload(payload)
        release_payload(payload)  # second release must not raise
        assert sharedmem.active_segments() == []

    def test_unpicklable_results_fall_back_to_plain(self):
        values = [lambda x: x, np.arange(50_000, dtype=np.float64)]
        assert maybe_shm_dumps(values) is values
        assert sharedmem.active_segments() == []


class TestDescriptor:
    def test_nbytes(self):
        desc = ArrayDescriptor(
            segment="s", dtype="<f8", shape=(10, 20), offset=0
        )
        assert desc.nbytes == 1600

    def test_descriptors_are_tiny_on_the_wire(self):
        desc = ArrayDescriptor(
            segment="repro-shm-12345-1", dtype="<f8",
            shape=(1000, 1000), offset=64,
        )
        assert len(pickle.dumps(desc)) < 200
