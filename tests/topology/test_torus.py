"""Unit tests for repro.topology.torus."""

from __future__ import annotations

import math

import pytest

from repro.topology.base import is_connected_subset
from repro.topology.torus import Torus, degenerate_free_dims, torus_num_edges


class TestConstruction:
    def test_dims_preserved_in_order(self):
        t = Torus((2, 5, 3))
        assert t.dims == (2, 5, 3)

    def test_sorted_dims_descending(self):
        assert Torus((2, 5, 3)).sorted_dims() == (5, 3, 2)

    def test_num_vertices(self):
        assert Torus((4, 3, 2)).num_vertices == 24

    def test_single_dim(self):
        assert Torus((5,)).num_vertices == 5

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            Torus((4, 0))

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError):
            Torus((4, -1))

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            Torus((4, 2.5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Torus(())

    def test_equality_and_hash(self):
        assert Torus((4, 2)) == Torus((4, 2))
        assert Torus((4, 2)) != Torus((2, 4))
        assert hash(Torus((4, 2))) == hash(Torus((4, 2)))

    def test_is_cubic(self):
        assert Torus((3, 3, 3)).is_cubic()
        assert not Torus((3, 3, 2)).is_cubic()


class TestStructure:
    def test_validate_small_tori(self):
        for dims in [(3,), (2,), (4, 3), (2, 2, 2), (4, 3, 2), (5, 1, 2)]:
            Torus(dims).validate()

    def test_degree_proper_cycles(self):
        assert Torus((4, 5)).degree((0, 0)) == 4

    def test_degree_length_two_dim_single_edge(self):
        # (4, 2): 2 edges in the 4-ring + 1 edge in the 2-dim.
        assert Torus((4, 2)).degree((0, 0)) == 3

    def test_degree_skips_length_one_dims(self):
        assert Torus((4, 1, 1)).degree((0, 0, 0)) == 2

    def test_torus_2_2_is_square(self):
        # With the single-edge convention T(2,2) is the 4-cycle = Q_2.
        t = Torus((2, 2))
        assert t.num_edges == 4
        assert t.regular_degree() == 2

    def test_num_edges_formula_matches_enumeration(self):
        for dims in [(3,), (4, 2), (2, 2, 2), (4, 3, 2), (5, 4)]:
            t = Torus(dims)
            assert t.num_edges == len(list(t.edges()))
            assert t.num_edges == torus_num_edges(dims)

    def test_neighbors_of_invalid_vertex_raise(self):
        t = Torus((3, 3))
        with pytest.raises(ValueError):
            list(t.neighbors((3, 0)))

    def test_contains(self):
        t = Torus((3, 2))
        assert t.contains((2, 1))
        assert not t.contains((3, 0))
        assert not t.contains((0,))
        assert not t.contains("ab")

    def test_vertices_count_and_uniqueness(self):
        t = Torus((3, 2, 2))
        verts = list(t.vertices())
        assert len(verts) == 12
        assert len(set(verts)) == 12

    def test_whole_graph_connected(self):
        t = Torus((4, 3, 2))
        assert is_connected_subset(t, t.vertices())


class TestDistances:
    def test_hop_distance_wraps(self):
        t = Torus((6, 4))
        assert t.hop_distance((0, 0), (5, 0)) == 1  # wrap-around
        assert t.hop_distance((0, 0), (3, 0)) == 3
        assert t.hop_distance((0, 0), (3, 2)) == 5

    def test_diameter(self):
        assert Torus((6, 4)).diameter == 5
        assert Torus((2, 2, 2)).diameter == 3

    def test_antipode_at_diameter(self):
        t = Torus((4, 4, 2))
        for v in t.vertices():
            assert t.hop_distance(v, t.antipode(v)) == t.diameter

    def test_antipode_involution_for_even_dims(self):
        t = Torus((4, 2))
        for v in t.vertices():
            assert t.antipode(t.antipode(v)) == v

    def test_ring_distance(self):
        t = Torus((5,))
        assert t.ring_distance(0, 0, 3) == 2
        assert t.ring_distance(0, 1, 3) == 2
        assert t.ring_distance(0, 2, 2) == 0


class TestCuts:
    def test_perpendicular_cut_long_dim(self):
        t = Torus((8, 4))
        # 4 lines along dim 0, 2 cut edges each.
        assert t.perpendicular_cut(0) == 8
        assert t.perpendicular_cut(1) == 16

    def test_perpendicular_cut_odd_dim_raises(self):
        with pytest.raises(ValueError):
            Torus((5, 4)).perpendicular_cut(0)

    def test_bisection_width_formula_2n_over_l(self):
        # For torus with even longest dim >= 3: bisection = 2N/L.
        for dims in [(8, 4), (8, 4, 4), (16, 4, 4, 4, 2)]:
            t = Torus(dims)
            assert t.bisection_width() == 2 * t.num_vertices // max(dims)

    def test_bisection_width_matches_halfspace_cut(self):
        t = Torus((6, 4))
        k, cut = t.best_perpendicular_bisection()
        half = t.halfspace(k)
        assert len(half) == t.num_vertices // 2
        assert t.cut_weight(half) == cut

    def test_bisection_no_even_dim_raises(self):
        with pytest.raises(ValueError):
            Torus((3, 3)).bisection_width()

    def test_cut_weight_matches_interior_identity(self):
        # k|A| = 2 interior + cut for regular graphs (Equation 1).
        t = Torus((4, 3, 2))
        k = t.regular_degree()
        subset = [(0, 0, 0), (0, 0, 1), (1, 0, 0), (2, 2, 1)]
        cut = t.cut_weight(subset)
        interior = t.interior_weight(subset)
        assert k * len(subset) == 2 * interior + cut

    def test_halfspace_odd_dim_raises(self):
        with pytest.raises(ValueError):
            Torus((5, 2)).halfspace(0)


class TestSubtorus:
    def test_subtorus_fits(self):
        t = Torus((16, 16, 12, 8, 2))
        sub = t.subtorus((8, 8, 4, 4, 2))
        assert sub.num_vertices == 2048

    def test_subtorus_too_large_raises(self):
        with pytest.raises(ValueError):
            Torus((4, 4)).subtorus((5, 1))

    def test_subtorus_too_many_dims_raises(self):
        with pytest.raises(ValueError):
            Torus((4, 4)).subtorus((2, 2, 2))

    def test_subtorus_multiset_matching(self):
        # (4, 4): two dims of 4; (4, 4) fits, (4, 5) does not.
        t = Torus((4, 4))
        assert t.subtorus((4, 4)).num_vertices == 16
        with pytest.raises(ValueError):
            t.subtorus((4, 5))


class TestHelpers:
    def test_degenerate_free_dims(self):
        assert degenerate_free_dims((4, 1, 2, 1)) == (4, 2)
        assert degenerate_free_dims((1, 1)) == ()

    def test_torus_num_edges_validates(self):
        with pytest.raises(ValueError):
            torus_num_edges((0, 2))

    def test_cross_section(self):
        assert Torus((6, 4)).cross_section(0) == 4
        with pytest.raises(ValueError):
            Torus((6, 4)).cross_section(2)

    def test_name(self):
        assert Torus((4, 2)).name == "Torus4x2"

    def test_total_capacity_equals_edges_for_unit_weights(self):
        t = Torus((4, 3))
        assert t.total_capacity == t.num_edges
