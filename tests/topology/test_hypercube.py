"""Unit tests for repro.topology.hypercube."""

from __future__ import annotations

import pytest

from repro.topology.hypercube import Hypercube
from repro.topology.torus import Torus


class TestBasics:
    def test_vertex_and_edge_counts(self):
        q = Hypercube(4)
        assert q.num_vertices == 16
        assert q.num_edges == 32

    def test_q0_single_vertex(self):
        q = Hypercube(0)
        assert q.num_vertices == 1
        assert q.num_edges == 0
        assert list(q.neighbors(0)) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Hypercube(-1)

    def test_rejects_huge(self):
        with pytest.raises(ValueError):
            Hypercube(31)

    def test_validate(self):
        Hypercube(4).validate()

    def test_degree_regular(self):
        q = Hypercube(5)
        assert q.is_regular()
        assert q.regular_degree() == 5

    def test_neighbors_are_bit_flips(self):
        q = Hypercube(3)
        assert sorted(v for v, _ in q.neighbors(5)) == [1, 4, 7]

    def test_invalid_vertex_raises(self):
        q = Hypercube(3)
        with pytest.raises(ValueError):
            list(q.neighbors(8))
        with pytest.raises(ValueError):
            q.degree(True)  # bools are not vertex labels


class TestDistances:
    def test_hop_distance_is_hamming(self):
        q = Hypercube(4)
        assert q.hop_distance(0b0000, 0b1111) == 4
        assert q.hop_distance(0b1010, 0b1001) == 2

    def test_antipode(self):
        q = Hypercube(4)
        assert q.antipode(0) == 15
        assert q.antipode(0b1010) == 0b0101

    def test_diameter(self):
        assert Hypercube(6).diameter == 6


class TestStructure:
    def test_bisection_width(self):
        assert Hypercube(4).bisection_width() == 8
        assert Hypercube(0).bisection_width() == 0

    def test_coordinate_roundtrip(self):
        q = Hypercube(4)
        for v in q.vertices():
            assert q.from_coordinates(q.to_coordinates(v)) == v

    def test_from_coordinates_validates(self):
        q = Hypercube(3)
        with pytest.raises(ValueError):
            q.from_coordinates((0, 1))
        with pytest.raises(ValueError):
            q.from_coordinates((0, 1, 2))

    def test_isomorphic_to_2_torus(self):
        """Q_d is exactly the torus (2,)*d under the single-edge convention."""
        q = Hypercube(3)
        t = Torus((2, 2, 2))
        assert q.num_edges == t.num_edges
        # Degrees and distances agree under the coordinate bijection.
        for v in q.vertices():
            coords = q.to_coordinates(v)
            assert q.degree(v) == t.degree(coords)
            q_nbrs = {q.to_coordinates(u) for u, _ in q.neighbors(v)}
            t_nbrs = {u for u, _ in t.neighbors(coords)}
            assert q_nbrs == t_nbrs

    def test_cut_weight_of_subcube(self):
        # The bottom 4 vertices of Q_3 form a 2-subcube: boundary 4.
        q = Hypercube(3)
        assert q.cut_weight(range(4)) == 4

    def test_equality(self):
        assert Hypercube(3) == Hypercube(3)
        assert Hypercube(3) != Hypercube(4)
