"""Unit tests for per-dimension torus weights (BG/Q E-dimension model)."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.topology.torus import Torus


class TestDimWeights:
    def test_default_uniform(self):
        t = Torus((4, 2))
        assert t.dim_weights == (1.0, 1.0)
        assert t.is_uniform()

    def test_weighted_neighbors(self):
        t = Torus((4, 2), dim_weights=(1.0, 2.0))
        weights = {v: w for v, w in t.neighbors((0, 0))}
        assert weights[(1, 0)] == 1.0
        assert weights[(0, 1)] == 2.0

    def test_validates(self):
        t = Torus((4, 2), dim_weights=(1.0, 2.0))
        t.validate()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Torus((4, 2), dim_weights=(1.0,))

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError):
            Torus((4, 2), dim_weights=(1.0, 0.0))

    def test_equality_distinguishes_weights(self):
        assert Torus((4, 2)) != Torus((4, 2), dim_weights=(1.0, 2.0))
        assert Torus((4, 2), dim_weights=(1.0, 2.0)) == Torus(
            (4, 2), dim_weights=(1.0, 2.0)
        )

    def test_cut_weight_uses_capacities(self):
        t = Torus((4, 2), dim_weights=(1.0, 3.0))
        # One layer of the 2-dim: 4 cut edges of weight 3 each.
        layer = {(x, 0) for x in range(4)}
        assert t.cut_weight(layer) == 12.0

    def test_repr_mentions_weights(self):
        assert "dim_weights" in repr(Torus((4, 2), dim_weights=(1, 2)))
        assert "dim_weights" not in repr(Torus((4, 2)))


class TestBgqNetwork:
    def test_e_dimension_doubled(self):
        geo = PartitionGeometry((1, 1, 1, 1))
        net = geo.bgq_network()
        assert net.dim_weights == (1.0, 1.0, 1.0, 1.0, 2.0)

    def test_combinatorial_network_unweighted(self):
        geo = PartitionGeometry((1, 1, 1, 1))
        assert geo.network().is_uniform()

    def test_bisection_unaffected(self):
        """The bisection cuts a longest dimension, never E, so the
        paper's normalized numbers hold on both views."""
        geo = PartitionGeometry((2, 2, 1, 1))
        assert (
            geo.network().bisection_width()
            == geo.normalized_bisection_bandwidth
        )

    def test_e_capacity_visible_in_linknetwork(self):
        from repro.netsim.network import LinkNetwork

        geo = PartitionGeometry((1, 1, 1, 1))
        net = LinkNetwork(geo.bgq_network(), link_bandwidth=2.0)
        # E-links carry 4 GB/s; A-D links 2 GB/s.
        import numpy as np

        assert set(np.unique(net.capacities)) == {2.0, 4.0}
