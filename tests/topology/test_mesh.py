"""Unit tests for repro.topology.mesh."""

from __future__ import annotations

import pytest

from repro.topology.mesh import Mesh


class TestBasics:
    def test_counts(self):
        m = Mesh((3, 2))
        assert m.num_vertices == 6
        assert m.num_edges == 7

    def test_num_edges_matches_enumeration(self):
        for dims in [(3,), (4, 2), (2, 2, 2), (4, 3, 2)]:
            m = Mesh(dims)
            assert m.num_edges == len(list(m.edges()))

    def test_validate(self):
        Mesh((3, 4)).validate()
        Mesh((2, 2, 2)).validate()

    def test_corner_and_interior_degrees(self):
        m = Mesh((3, 3))
        assert m.degree((0, 0)) == 2
        assert m.degree((1, 0)) == 3
        assert m.degree((1, 1)) == 4

    def test_not_regular_unless_trivial(self):
        assert not Mesh((3, 3)).is_regular()

    def test_no_wraparound(self):
        m = Mesh((4,))
        nbrs = {v for v, _ in m.neighbors((0,))}
        assert nbrs == {(1,)}

    def test_invalid_vertex(self):
        with pytest.raises(ValueError):
            list(Mesh((3, 3)).neighbors((3, 0)))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Mesh((0, 2))


class TestMetrics:
    def test_hop_distance_manhattan(self):
        m = Mesh((5, 5))
        assert m.hop_distance((0, 0), (4, 4)) == 8

    def test_diameter(self):
        assert Mesh((5, 3)).diameter == 6

    def test_bisection_width_single_plane(self):
        # Mesh cut has 1 edge per line (no wrap), unlike torus.
        assert Mesh((4, 4)).bisection_width() == 4
        assert Mesh((6, 2)).bisection_width() == 2

    def test_bisection_all_odd_raises(self):
        with pytest.raises(ValueError):
            Mesh((3, 5)).bisection_width()

    def test_cut_weight_of_half(self):
        m = Mesh((4, 2))
        left = {(x, y) for x in range(2) for y in range(2)}
        assert m.cut_weight(left) == 2
