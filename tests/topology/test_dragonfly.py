"""Unit tests for repro.topology.dragonfly."""

from __future__ import annotations

import pytest

from repro.topology.dragonfly import ARRANGEMENTS, Dragonfly


class TestConstruction:
    def test_counts(self):
        d = Dragonfly(num_groups=3, a=4, h=3)
        assert d.num_vertices == 36

    def test_all_arrangements_validate(self):
        for arr in ARRANGEMENTS:
            for groups in (2, 3, 4, 5):
                Dragonfly(
                    num_groups=groups, a=3, h=2, arrangement=arr
                ).validate()

    def test_single_group_no_globals(self):
        d = Dragonfly(num_groups=1, a=3, h=2)
        d.validate()
        assert d.global_cut_between_groups() == 0.0

    def test_unknown_arrangement(self):
        with pytest.raises(ValueError):
            Dragonfly(num_groups=3, a=3, h=2, arrangement="zigzag")

    def test_global_links_multiple_constraint(self):
        with pytest.raises(ValueError):
            Dragonfly(num_groups=4, a=3, h=2, global_links_per_group=5)

    def test_extra_global_links(self):
        d = Dragonfly(num_groups=3, a=3, h=2, global_links_per_group=4)
        d.validate()
        assert d.global_cut_between_groups() == 16.0


class TestWeights:
    def test_default_capacities(self):
        d = Dragonfly(num_groups=2, a=4, h=3)
        weights = {u: w for u, w in d.neighbors((0, 0, 0))}
        row = [w for (g, x, y), w in weights.items() if g == 0 and y == 0]
        col = [w for (g, x, y), w in weights.items() if g == 0 and x == 0 and y != 0]
        assert set(row) == {1.0}
        assert set(col) == {3.0}

    def test_global_capacity(self):
        d = Dragonfly(num_groups=2, a=2, h=2)
        total = sum(
            w
            for v in d.group_vertices(0)
            for (g, _, _), w in (
                (u, w) for u, w in d.neighbors(v)
            )
            if g == 1
        )
        assert total == d.global_cut_between_groups() == 4.0


class TestGroups:
    def test_group_vertices(self):
        d = Dragonfly(num_groups=3, a=2, h=2)
        verts = d.group_vertices(1)
        assert len(verts) == 4
        assert all(v[0] == 1 for v in verts)
        with pytest.raises(ValueError):
            d.group_vertices(3)

    def test_group_cut_matches_cut_weight(self):
        for arr in ARRANGEMENTS:
            d = Dragonfly(num_groups=4, a=3, h=2, arrangement=arr)
            cut = d.cut_weight(d.group_vertices(0))
            assert cut == d.global_cut_between_groups()

    def test_every_pair_of_groups_connected(self):
        for arr in ARRANGEMENTS:
            d = Dragonfly(num_groups=4, a=3, h=2, arrangement=arr)
            reached = set()
            for v in d.group_vertices(0):
                for (g, _, _), _ in d.neighbors(v):
                    reached.add(g)
            assert reached >= {1, 2, 3}

    def test_properties(self):
        d = Dragonfly(num_groups=3, a=4, h=2, arrangement="relative")
        assert d.num_groups == 3
        assert d.group_dims == (4, 2)
        assert d.arrangement == "relative"
