"""Unit tests for repro.topology.fattree."""

from __future__ import annotations

import pytest

from repro.topology.base import is_connected_subset
from repro.topology.fattree import FatTree


class TestStructure:
    def test_counts_k4(self):
        ft = FatTree(4)
        assert ft.num_hosts == 16
        assert ft.num_switches == 20
        assert ft.num_vertices == 36

    def test_validate(self):
        FatTree(2).validate()
        FatTree(4).validate()

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            FatTree(3)

    def test_host_degree_one(self):
        ft = FatTree(4)
        for h in ft.hosts():
            assert ft.degree(h) == 1

    def test_switch_degrees_are_k(self):
        ft = FatTree(4)
        for v in ft.vertices():
            if v[0] in ("agg", "edge", "core"):
                assert ft.degree(v) == 4, v

    def test_core_connects_all_pods(self):
        ft = FatTree(4)
        pods = {v[1] for v, _ in ft.neighbors(("core", 0, 0))}
        assert pods == {0, 1, 2, 3}

    def test_connected(self):
        ft = FatTree(4)
        assert is_connected_subset(ft, ft.vertices())

    def test_contains(self):
        ft = FatTree(4)
        assert ft.contains(("host", 0, 0, 0))
        assert ft.contains(("core", 1, 1))
        assert not ft.contains(("host", 4, 0, 0))
        assert not ft.contains(("spine", 0, 0))
        assert not ft.contains(42)

    def test_host_bisection(self):
        assert FatTree(4).host_bisection_width() == 8

    def test_pod_cut(self):
        # Cutting one pod (switches + hosts) severs its (k/2)^2 uplinks.
        ft = FatTree(4)
        pod0 = [v for v in ft.vertices() if v[0] != "core" and v[1] == 0]
        assert ft.cut_weight(pod0) == 4
