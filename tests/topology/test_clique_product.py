"""Unit tests for repro.topology.clique_product (HyperX)."""

from __future__ import annotations

import pytest

from repro.topology.clique_product import CliqueProduct


class TestBasics:
    def test_counts(self):
        h = CliqueProduct((3, 2))
        assert h.num_vertices == 6
        # 2 lines of K3 (3 edges each) + 3 lines of K2 (1 edge each).
        assert h.num_edges == 9

    def test_num_edges_matches_enumeration(self):
        for dims in [(4,), (3, 2), (2, 2, 2), (4, 3)]:
            h = CliqueProduct(dims)
            assert h.num_edges == len(list(h.edges()))

    def test_validate(self):
        CliqueProduct((4, 3)).validate()
        CliqueProduct((3, 2), weights=(1.0, 3.0)).validate()

    def test_single_clique_is_complete_graph(self):
        k5 = CliqueProduct((5,))
        assert k5.num_edges == 10
        assert k5.regular_degree() == 4

    def test_degree(self):
        assert CliqueProduct((4, 3)).degree((0, 0)) == 5

    def test_degenerate_dim(self):
        h = CliqueProduct((3, 1))
        assert h.degree((0, 0)) == 2

    def test_weights_applied(self):
        h = CliqueProduct((2, 2), weights=(1.0, 3.0))
        w = {v: wt for v, wt in h.neighbors((0, 0))}
        assert w[(1, 0)] == 1.0
        assert w[(0, 1)] == 3.0

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            CliqueProduct((2, 2), weights=(1.0,))

    def test_weight_positive(self):
        with pytest.raises(ValueError):
            CliqueProduct((2, 2), weights=(1.0, 0.0))

    def test_is_uniform(self):
        assert CliqueProduct((2, 3)).is_uniform()
        assert not CliqueProduct((2, 3), weights=(1, 2)).is_uniform()


class TestMetrics:
    def test_hop_distance_hamming(self):
        h = CliqueProduct((4, 4))
        assert h.hop_distance((0, 0), (3, 2)) == 2
        assert h.hop_distance((0, 0), (0, 2)) == 1

    def test_diameter(self):
        assert CliqueProduct((4, 4, 4)).diameter == 3
        assert CliqueProduct((4, 1)).diameter == 1

    def test_bisection_even_clique(self):
        # K4 x K2: cut K4 in half: 2*2 edges * 2 lines = 8;
        # cut K2 in half: 1*1 * 4 lines = 4 -> min is 4.
        assert CliqueProduct((4, 2)).bisection_width() == 4

    def test_bisection_weighted(self):
        # Weighted K2 links cost 3 each: 4 lines * 3 = 12 > 8.
        h = CliqueProduct((4, 2), weights=(1.0, 3.0))
        assert h.bisection_width() == 8.0

    def test_cut_weight_of_half_clique(self):
        h = CliqueProduct((4, 2))
        half = {(x, y) for x in range(4) for y in (0,)}
        assert h.cut_weight(half) == 4
