"""Unit tests for the generic Topology machinery in repro.topology.base."""

from __future__ import annotations

import pytest

from repro.topology.base import cut_edges, is_connected_subset
from repro.topology.torus import Torus


class TestDerivedQuantities:
    def test_edges_yield_each_once(self):
        t = Torus((4, 3))
        edges = list(t.edges())
        assert len(edges) == t.num_edges
        canon = {frozenset((u, v)) for u, v, _ in edges}
        assert len(canon) == len(edges)

    def test_weighted_degree_equals_degree_unweighted(self):
        t = Torus((4, 3))
        for v in t.vertices():
            assert t.weighted_degree(v) == t.degree(v)

    def test_expansion_of_single_vertex(self):
        t = Torus((4, 4))
        assert t.expansion([(0, 0)]) == 1.0

    def test_expansion_of_half(self):
        t = Torus((4, 4))
        half = t.halfspace(0)
        # cut = 8, incident = 4 * 8 = 32.
        assert t.expansion(half) == pytest.approx(8 / 32)

    def test_expansion_empty_raises(self):
        with pytest.raises(ValueError):
            Torus((4, 4)).expansion([])

    def test_cut_edges_listing(self):
        t = Torus((4,))
        edges = cut_edges(t, [(0,), (1,)])
        pairs = {(u, v) for u, v, _ in edges}
        assert pairs == {((0,), (3,)), ((1,), (2,))}

    def test_interior_weight_counts_each_edge_once(self):
        t = Torus((4,))
        assert t.interior_weight([(0,), (1,), (2,)]) == 2.0


class TestConnectivity:
    def test_connected_subset(self):
        t = Torus((4, 4))
        assert is_connected_subset(t, [(0, 0), (0, 1), (1, 1)])

    def test_disconnected_subset(self):
        t = Torus((5, 5))
        assert not is_connected_subset(t, [(0, 0), (2, 2)])

    def test_empty_subset_connected(self):
        assert is_connected_subset(Torus((3, 3)), [])


class TestNetworkXExport:
    def test_roundtrip_counts(self):
        t = Torus((4, 3))
        g = t.to_networkx()
        assert g.number_of_nodes() == t.num_vertices
        assert g.number_of_edges() == t.num_edges

    def test_weights_exported(self):
        t = Torus((4, 3))
        g = t.to_networkx()
        assert all(d["weight"] == 1.0 for _, _, d in g.edges(data=True))

    def test_networkx_cut_agrees(self):
        import networkx as nx

        t = Torus((4, 4))
        half = t.halfspace(0)
        nx_cut = nx.cut_size(t.to_networkx(), half, weight="weight")
        assert nx_cut == t.cut_weight(half)

    def test_networkx_bisection_via_spectral(self):
        # Sanity: algebraic connectivity of a torus is positive.
        import networkx as nx

        t = Torus((4, 4))
        assert nx.is_connected(t.to_networkx())
