"""Unit tests for the Slim Fly (MMS) construction."""

from __future__ import annotations

import pytest

from repro.topology.base import is_connected_subset
from repro.topology.slimfly import SlimFly, mms_parameters


class TestParameters:
    def test_q5(self):
        assert mms_parameters(5) == (1, 7)

    def test_q13(self):
        assert mms_parameters(13) == (1, 19)

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            mms_parameters(9)

    def test_rejects_3_mod_4(self):
        with pytest.raises(ValueError):
            mms_parameters(7)
        with pytest.raises(ValueError):
            mms_parameters(11)

    def test_rejects_two(self):
        with pytest.raises(ValueError):
            mms_parameters(2)


class TestStructure:
    @pytest.fixture(scope="class")
    def sf5(self):
        return SlimFly(5)

    def test_vertex_count(self, sf5):
        assert sf5.num_vertices == 50

    def test_validates(self, sf5):
        sf5.validate()

    def test_regular_with_mms_degree(self, sf5):
        degrees = {sf5.degree(v) for v in sf5.vertices()}
        assert degrees == {7}

    def test_connected(self, sf5):
        assert is_connected_subset(sf5, sf5.vertices())

    def test_diameter_two(self, sf5):
        """MMS graphs have diameter 2 — near the Moore bound."""
        from repro.netsim.routing import bfs_route

        verts = list(sf5.vertices())
        origin = verts[0]
        for v in verts[1:]:
            assert len(bfs_route(sf5, origin, v)) - 1 <= 2

    def test_near_moore_bound(self, sf5):
        """50 vertices at degree 7, diameter 2: Moore bound is
        1 + 7 + 7*6 = 50 exactly? No — MMS reaches ~88% of it."""
        d = sf5.regular_degree()
        moore = 1 + d + d * (d - 1)
        assert sf5.num_vertices >= 0.8 * moore

    def test_contains(self, sf5):
        assert sf5.contains((0, 4, 4))
        assert sf5.contains((1, 0, 0))
        assert not sf5.contains((2, 0, 0))
        assert not sf5.contains((0, 5, 0))

    def test_invalid_vertex(self, sf5):
        with pytest.raises(ValueError):
            list(sf5.neighbors((0, 5, 5)))

    def test_bipartite_like_halves(self, sf5):
        """Cross edges between the two vertex classes follow y = mx + c:
        each vertex has exactly q cross-class neighbors."""
        for v in sf5.vertices():
            cross = sum(1 for u, _ in sf5.neighbors(v) if u[0] != v[0])
            assert cross == 5

    def test_q13_scales(self):
        sf = SlimFly(13)
        assert sf.num_vertices == 338
        assert sf.regular_degree() == 19
        # Spot-check symmetry on a few vertices.
        for v in [(0, 0, 0), (1, 6, 7), (0, 12, 3)]:
            for u, _ in sf.neighbors(v):
                assert v in {w for w, _ in sf.neighbors(u)}


class TestExpansionAnalysis:
    def test_spectral_bounds_apply(self):
        """The paper's fallback for Slim Fly: spectral estimation."""
        from repro.isoperimetry.spectral import spectral_expansion_estimate

        sf = SlimFly(5)
        est = spectral_expansion_estimate(sf)
        assert 0 < est["lower"] <= est["upper"] <= est["cheeger_upper"]
        # Slim Fly is a strong expander: conductance far above a torus'.
        assert est["upper"] > 0.3
