"""Batch route-cache warmup (:meth:`VirtualMpi.warm_routes`).

Prefetching a static communication pattern must (a) make every in-run
route lookup a cache hit, (b) cache exactly the paths the scalar
routers would have derived, and (c) fall back to the scalar fault-aware
router on faulted topologies or under ``REPRO_VECTOR=0``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observability
from repro.faults import FaultSet
from repro.simmpi import SendRecv, VirtualMpi
from repro.simmpi.engine import _link_dim_table
from repro.topology import Torus


def antipodal(rank, size):
    yield SendRecv(peer=(rank + size // 2) % size, gb=0.5)


def antipodal_pairs(size):
    return [(r, (r + size // 2) % size) for r in range(size)]


def counting_routes(monkeypatch):
    """Patch the engine's scalar routing entry points to count calls."""
    import repro.simmpi.engine as engine_mod

    calls = {"n": 0}
    real_dor = engine_mod.dimension_ordered_route
    real_far = engine_mod.fault_aware_route

    def dor(*args, **kwargs):
        calls["n"] += 1
        return real_dor(*args, **kwargs)

    def far(*args, **kwargs):
        calls["n"] += 1
        return real_far(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "dimension_ordered_route", dor)
    monkeypatch.setattr(engine_mod, "fault_aware_route", far)
    return calls


class TestWarmRoutes:
    def test_warmed_run_routes_nothing(self, monkeypatch):
        world = VirtualMpi(Torus((4, 4)), link_bandwidth=2.0)
        warmed = world.warm_routes(antipodal_pairs(world.size))
        assert warmed == world.size
        calls = counting_routes(monkeypatch)
        world.run(antipodal)
        assert calls["n"] == 0  # every route served from the warm cache

    def test_warmed_run_matches_cold_run(self):
        torus = Torus((4, 4))
        cold = VirtualMpi(torus, link_bandwidth=2.0).run(antipodal)
        warm_world = VirtualMpi(torus, link_bandwidth=2.0)
        warm_world.warm_routes(antipodal_pairs(warm_world.size))
        assert warm_world.run(antipodal) == cold

    def test_batch_paths_equal_scalar_paths(self, monkeypatch):
        torus = Torus((4, 3, 2))
        pairs = [(a, b) for a in range(6) for b in range(12, 18)]
        vec = VirtualMpi(torus)
        vec.warm_routes(pairs)
        monkeypatch.setenv("REPRO_VECTOR", "0")
        scal = VirtualMpi(torus)
        scal.warm_routes(pairs)
        assert set(vec._route_cache) == set(scal._route_cache)
        for key, path in vec._route_cache.items():
            assert path.tolist() == scal._route_cache[key].tolist()

    def test_duplicates_and_cached_pairs_skipped(self):
        world = VirtualMpi(Torus((4, 4)))
        assert world.warm_routes([(0, 8), (0, 8), (1, 9)]) == 2
        assert world.warm_routes([(0, 8), (2, 10)]) == 1
        assert world.warm_routes([]) == 0

    def test_same_node_pair_caches_empty_path(self):
        world = VirtualMpi(Torus((4, 4)))
        assert world.warm_routes([(3, 3)]) == 1
        assert world._route_cache[(3, 3)].tolist() == []

    def test_out_of_range_rank_rejected(self):
        world = VirtualMpi(Torus((4, 4)))
        with pytest.raises(ValueError, match="out of range"):
            world.warm_routes([(0, 16)])
        with pytest.raises(ValueError, match="out of range"):
            world.warm_routes([(-1, 0)])

    def test_rank_to_node_dedupes_by_node(self):
        # Two ranks on one node: both pairs map to the same node key.
        world = VirtualMpi(Torus((4,)), rank_to_node=[0, 0, 1, 2])
        assert world.warm_routes([(0, 2), (1, 2)]) == 1

    def test_faulted_engine_warms_fault_aware_routes(self, monkeypatch):
        ring = Torus((8,))
        faults = FaultSet(failed_links=[((1,), (2,))])
        world = VirtualMpi(ring, faults=faults)
        calls = counting_routes(monkeypatch)
        assert world.warm_routes([(0, 4)]) == 1
        assert calls["n"] == 1  # scalar fallback, not the batch router
        # The route detours the other way around the ring: different
        # links than the pristine natural route.
        pristine = VirtualMpi(ring)
        pristine.warm_routes([(0, 4)])
        assert (
            world._route_cache[(0, 4)].tolist()
            != pristine._route_cache[(0, 4)].tolist()
        )

    def test_scalar_env_knob_forces_scalar_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "0")
        world = VirtualMpi(Torus((4, 4)))
        calls = counting_routes(monkeypatch)
        assert world.warm_routes(antipodal_pairs(world.size)) == 16
        assert calls["n"] == 16

    def test_warmed_counter_emitted(self):
        s = observability.OBS
        saved = (
            s.enabled, s.events, s.dropped_events, s.stack,
            s.span_totals, s.counters, s.gauges, s.origin,
        )
        s.enabled = False
        s.reset()
        try:
            observability.enable()
            world = VirtualMpi(Torus((4, 4)))
            world.warm_routes(antipodal_pairs(world.size))
            assert s.counters["simmpi.route_cache.warmed"] == 16.0
        finally:
            (
                s.enabled, s.events, s.dropped_events, s.stack,
                s.span_totals, s.counters, s.gauges, s.origin,
            ) = saved


class TestLinkDimTable:
    def test_memoized_across_engines(self):
        _link_dim_table.cache_clear()
        t = Torus((4, 3, 2))
        a = VirtualMpi(t)._link_dim_array()
        b = VirtualMpi(Torus((4, 3, 2)))._link_dim_array()
        assert a is b
        assert _link_dim_table.cache_info().hits >= 1

    def test_table_is_read_only(self):
        table = _link_dim_table(Torus((4, 2)))
        with pytest.raises(ValueError):
            table[0] = 0

    def test_table_matches_link_endpoints(self):
        t = Torus((4, 3, 2))
        world = VirtualMpi(t)
        table = world._link_dim_array()
        net = world._base_net
        assert len(table) == net.num_links
        for link in range(net.num_links):
            u, v = net.link_endpoints(link)
            dim = next(i for i in range(len(u)) if u[i] != v[i])
            assert table[link] == dim

    def test_registered_with_cache_stats(self):
        from repro.caching import cache_stats

        assert _link_dim_table.cache.name in cache_stats()
