"""Unit tests for the simmpi FlowLedger (the vector engine's store)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.batchroute import PathMatrix
from repro.simmpi.ledger import FlowLedger


def _ledger(**kw):
    return FlowLedger(16, slot_capacity=2, entry_capacity=4, **kw)


class TestAddAndRetire:
    def test_add_returns_dense_slots(self):
        led = _ledger()
        assert led.add([0, 1], 1.0, 0, 0, 1) == 0
        assert led.add([2], 2.0, 0, 1, 2) == 1
        assert led.num_slots == 2
        assert led.num_active == 2
        assert led.path(0).tolist() == [0, 1]
        assert led.path(1).tolist() == [2]
        assert led.remaining[:2].tolist() == [1.0, 2.0]

    def test_growth_preserves_state(self):
        led = _ledger()
        for i in range(50):  # far past both initial capacities
            led.add([i % 16, (i + 1) % 16], float(i), i, i, i + 1)
        assert led.num_slots == 50
        assert led.path(37).tolist() == [37 % 16, 38 % 16]
        assert led.remaining[37] == 37.0
        assert led.order_keys[:50].tolist() == list(range(50))

    def test_link_load_incremental(self):
        led = _ledger()
        led.add([0, 1], 1.0, 0, 0, 1)
        led.add([1, 2], 1.0, 1, 1, 2)
        assert led.link_load[:3].tolist() == [1, 2, 1]
        led.deactivate(np.array([0]))
        assert led.link_load[:3].tolist() == [0, 1, 1]
        assert led.num_active == 1
        with pytest.raises(ValueError):
            led.link_load[0] = 99  # read-only snapshot

    def test_deactivate_twice_rejected(self):
        led = _ledger()
        led.add([0], 1.0, 0, 0, 1)
        led.deactivate(np.array([0]))
        with pytest.raises(ValueError, match="already-retired"):
            led.deactivate(np.array([0]))

    def test_active_slots_orderings(self):
        led = _ledger()
        for i in range(4):
            led.add([i], 1.0, i, i, i + 1)
        led.deactivate(np.array([1]))
        assert led.active_slots().tolist() == [0, 2, 3]
        # Repath slot 0: the fresh tail slot inherits order key 0, so
        # creation order differs from ascending slot order.
        fresh = led.repath(0, [5, 6])
        assert fresh == 4
        assert led.active_slots().tolist() == [2, 3, 4]
        assert led.active_slots_by_order().tolist() == [4, 2, 3]


class TestView:
    def test_view_is_live_and_cached(self):
        led = _ledger()
        led.add([0, 1], 1.0, 0, 0, 1)
        pm = led.view()
        assert isinstance(pm, PathMatrix)
        assert len(pm) == 1
        assert pm[0].tolist() == [0, 1]
        assert led.view() is pm  # cached until the arena changes
        led.add([2], 1.0, 1, 1, 2)
        pm2 = led.view()
        assert pm2 is not pm
        assert len(pm2) == 2
        assert pm2[1].tolist() == [2]

    def test_view_is_read_only_but_arena_stays_writable(self):
        led = _ledger()
        led.add([0, 1], 1.0, 0, 0, 1)
        pm = led.view()
        with pytest.raises(ValueError):
            pm.link_ids[0] = 7
        led.add([3], 1.0, 1, 1, 2)  # arena append still fine

    def test_deactivate_keeps_view(self):
        led = _ledger()
        led.add([0, 1], 1.0, 0, 0, 1)
        led.add([2], 1.0, 1, 1, 2)
        pm = led.view()
        led.deactivate(np.array([0]))
        # Retiring flips a mask bit; the CSR itself is unchanged.
        assert led.view() is pm


class TestMaskQueries:
    def test_crossing_count_and_slots(self):
        led = _ledger()
        led.add([0, 1], 1.0, 0, 0, 1)   # crosses 1
        led.add([2, 3], 1.0, 1, 1, 2)
        led.add([1, 4], 1.0, 2, 2, 3)   # crosses 1
        mask = np.zeros(16, dtype=bool)
        mask[1] = True
        act = led.active_slots()
        assert led.crossing_count(mask, act) == 2
        assert led.crossing_slots(mask).tolist() == [0, 2]
        mask[:] = False
        assert led.crossing_count(mask, act) == 0
        assert led.crossing_slots(mask).tolist() == []

    def test_crossing_slots_in_creation_order_after_repath(self):
        led = _ledger()
        led.add([0], 1.0, 0, 0, 1)
        led.add([1], 1.0, 1, 1, 2)
        led.repath(0, [2])  # slot 2 now carries order key 0
        mask = np.ones(16, dtype=bool)
        assert led.crossing_slots(mask).tolist() == [2, 1]


class TestRepath:
    def test_repath_inherits_everything(self):
        led = _ledger()
        led.add([0, 1], 3.5, 7, 4, 9)
        fresh = led.repath(0, [2, 3, 4])
        assert led.num_active == 1
        assert led.path(fresh).tolist() == [2, 3, 4]
        assert led.remaining[fresh] == 3.5
        assert led.group_ids[fresh] == 7
        assert led.src_nodes[fresh] == 4
        assert led.dst_nodes[fresh] == 9
        assert led.order_keys[fresh] == 0
        assert led.link_load[:5].tolist() == [0, 0, 1, 1, 1]

    def test_repath_inactive_rejected(self):
        led = _ledger()
        led.add([0], 1.0, 0, 0, 1)
        led.deactivate(np.array([0]))
        with pytest.raises(ValueError, match="not active"):
            led.repath(0, [1])


class TestCompaction:
    def test_below_threshold_never_compacts(self):
        led = _ledger(compact_min=10_000)
        for i in range(20):
            slot = led.add([i % 16], 1.0, i, i, i + 1)
            led.deactivate(np.array([slot]))
        assert not led.maybe_compact()
        assert led.compactions == 0

    def test_compacts_and_preserves_active_flows(self):
        led = _ledger(compact_min=1)
        keep = []
        for i in range(10):
            slot = led.add([i % 16, (i + 3) % 16], float(i), i, i, i + 1)
            if i % 3 == 0:
                keep.append((slot, i))
            else:
                led.deactivate(np.array([slot]))
        load_before = led.link_load.copy()
        assert led.maybe_compact()
        assert led.compactions == 1
        assert led.num_active == len(keep)
        assert led.num_slots == len(keep)
        assert led.retired_entries == 0
        # Planes compacted in slot order; paths and metadata intact.
        for new_slot, (_, i) in enumerate(keep):
            assert led.path(new_slot).tolist() == [i % 16, (i + 3) % 16]
            assert led.remaining[new_slot] == float(i)
            assert led.group_ids[new_slot] == i
        np.testing.assert_array_equal(led.link_load, load_before)

    def test_compaction_requires_retired_majority(self):
        led = _ledger(compact_min=1)
        led.add([0, 1, 2, 3], 1.0, 0, 0, 1)
        slot = led.add([4], 1.0, 1, 1, 2)
        led.deactivate(np.array([slot]))
        # 1 retired entry vs 4 live: rebuild would not pay.
        assert not led.maybe_compact()

    def test_knob_default_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_COMPACT", "3")
        led = FlowLedger(8)
        for i in range(4):
            slot = led.add([i], 1.0, i, i, i + 1)
            led.deactivate(np.array([slot]))
        assert led.maybe_compact()

    def test_add_after_compaction(self):
        led = _ledger(compact_min=1)
        led.add([0], 1.0, 0, 0, 1)
        for i in range(5):
            slot = led.add([1, 2], 1.0, 1 + i, i, i + 1)
            led.deactivate(np.array([slot]))
        assert led.maybe_compact()
        slot = led.add([3], 2.0, 99, 7, 8)
        assert slot == 1
        assert led.path(slot).tolist() == [3]
        # Fresh order keys continue past every key ever issued.
        assert led.order_keys[slot] > led.order_keys[0]


class TestValidation:
    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            FlowLedger(-1)
        with pytest.raises(ValueError):
            FlowLedger(4, slot_capacity=0)
        with pytest.raises(ValueError):
            FlowLedger(4, entry_capacity=0)
