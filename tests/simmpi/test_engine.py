"""Unit tests for the virtual-time MPI engine."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    Barrier,
    Compute,
    DeadlockError,
    Recv,
    Send,
    SendRecv,
    VirtualMpi,
)
from repro.topology import Torus


@pytest.fixture
def ring4():
    return VirtualMpi(Torus((4,)), link_bandwidth=2.0)


class TestPointToPoint:
    def test_single_transfer_time(self, ring4):
        def prog(rank, size):
            if rank == 0:
                yield Send(dst=1, gb=4.0)
            elif rank == 1:
                yield Recv(src=0)

        assert ring4.run(prog).time == pytest.approx(2.0)

    def test_pingpong_serializes(self, ring4):
        def prog(rank, size):
            if rank == 0:
                yield Send(dst=1, gb=4.0)
                yield Recv(src=1)
            elif rank == 1:
                yield Recv(src=0)
                yield Send(dst=0, gb=4.0)

        assert ring4.run(prog).time == pytest.approx(4.0)

    def test_recv_posted_first(self, ring4):
        def prog(rank, size):
            if rank == 1:
                yield Recv(src=0)
            elif rank == 0:
                yield Compute(seconds=1.0)
                yield Send(dst=1, gb=2.0)

        # 1 s compute then 1 s transfer.
        assert ring4.run(prog).time == pytest.approx(2.0)

    def test_tags_must_match(self, ring4):
        def prog(rank, size):
            if rank == 0:
                yield Send(dst=1, gb=1.0, tag=7)
            elif rank == 1:
                yield Recv(src=0, tag=8)

        with pytest.raises(DeadlockError):
            ring4.run(prog)

    def test_same_node_free(self):
        # Two ranks on one node: transfer is instantaneous.
        world = VirtualMpi(Torus((4,)), rank_to_node=[0, 0])

        def prog(rank, size):
            if rank == 0:
                yield Send(dst=1, gb=100.0)
            else:
                yield Recv(src=0)

        assert world.run(prog).time == pytest.approx(0.0)

    def test_multiple_messages_fifo(self, ring4):
        def prog(rank, size):
            if rank == 0:
                yield Send(dst=1, gb=2.0, tag=0)
                yield Send(dst=1, gb=2.0, tag=0)
            elif rank == 1:
                yield Recv(src=0, tag=0)
                yield Recv(src=0, tag=0)

        assert ring4.run(prog).time == pytest.approx(2.0)


class TestContention:
    def test_shared_link_halves_rate(self):
        """Ranks 0 and 1 both send to their +1 neighbor... use a line
        where both flows traverse the same link."""
        world = VirtualMpi(Torus((6,)), link_bandwidth=2.0)

        def prog(rank, size):
            if rank == 0:
                yield Send(dst=2, gb=2.0)   # path 0->1->2
            elif rank == 1:
                yield Send(dst=2, gb=2.0)   # path 1->2 (shared link)
            elif rank == 2:
                yield Recv(src=0)
                # Both transfers overlap only if both recvs are posted;
                # post the second immediately after.
                yield Recv(src=1)

        # Sequentialized by the single receiver's posts: first flow
        # 1 s, second 1 s.
        assert world.run(prog).time == pytest.approx(2.0)

    def test_antipodal_exchange_rates(self, ring4):
        def prog(rank, size):
            yield SendRecv(peer=(rank + 2) % 4, gb=2.0)

        # Parity-split antipodal traffic: 1 flow per link: 1 s.
        assert ring4.run(prog).time == pytest.approx(1.0)

    def test_unequal_exchanges_finish_independently(self):
        """Disjoint neighbor pairs with different volumes finish at
        their own times; the makespan is the slower pair's."""
        world = VirtualMpi(Torus((8,)), link_bandwidth=2.0)

        def prog(rank, size):
            if rank == 0:
                yield SendRecv(peer=1, gb=2.0)
            elif rank == 1:
                yield SendRecv(peer=0, gb=2.0)
            elif rank == 2:
                yield SendRecv(peer=3, gb=6.0)
            elif rank == 3:
                yield SendRecv(peer=2, gb=6.0)

        res = world.run(prog)
        assert res.time == pytest.approx(3.0)
        assert res.ranks[0].finish_time == pytest.approx(1.0)
        assert res.ranks[2].finish_time == pytest.approx(3.0)


class TestCollectveControl:
    def test_barrier_synchronizes(self, ring4):
        def prog(rank, size):
            yield Compute(seconds=float(rank))
            yield Barrier()
            yield Compute(seconds=1.0)

        assert ring4.run(prog).time == pytest.approx(4.0)

    def test_zero_compute_is_free(self, ring4):
        def prog(rank, size):
            yield Compute(seconds=0.0)

        assert ring4.run(prog).time == 0.0

    def test_stats_accounting(self, ring4):
        def prog(rank, size):
            yield Compute(seconds=0.5)
            if rank == 0:
                yield Send(dst=1, gb=4.0)
            elif rank == 1:
                yield Recv(src=0)

        res = ring4.run(prog)
        assert res.ranks[0].gb_sent == pytest.approx(4.0)
        assert res.ranks[0].messages_sent == 1
        assert res.ranks[1].gb_sent == 0.0
        assert res.max_compute_seconds == pytest.approx(0.5)
        assert res.total_gb_sent == pytest.approx(4.0)


class TestValidation:
    def test_bad_op_rejected(self, ring4):
        def prog(rank, size):
            yield "not an op"

        with pytest.raises(TypeError):
            ring4.run(prog)

    def test_bad_rank_to_node(self):
        with pytest.raises(ValueError):
            VirtualMpi(Torus((4,)), rank_to_node=[0, 9])

    def test_deadlock_barrier_subset(self, ring4):
        def prog(rank, size):
            if rank < 2:
                yield Barrier()

        with pytest.raises(DeadlockError):
            ring4.run(prog)

    def test_op_validation(self):
        with pytest.raises(ValueError):
            Send(dst=0, gb=0.0)
        with pytest.raises(ValueError):
            Compute(seconds=-1.0)
        with pytest.raises(ValueError):
            SendRecv(peer=0, gb=-1.0)


class TestAgainstFlowLevelExperiment:
    def test_pairing_program_matches_experiment(self):
        """Writing the paper's pairing benchmark as a rank program gives
        the same virtual time as the flow-level harness."""
        from repro.allocation.geometry import PartitionGeometry
        from repro.experiments.pairing import (
            PairingParameters,
            run_pairing,
        )

        geo = PartitionGeometry((1, 1, 1, 1))
        params = PairingParameters(rounds=2)
        expected = run_pairing(geo, params).time_seconds

        torus = geo.bgq_network()
        verts = list(torus.vertices())
        idx = {v: i for i, v in enumerate(verts)}
        vol = params.volume_per_pair_gb

        def prog(rank, size):
            peer = idx[torus.antipode(verts[rank])]
            yield SendRecv(peer=peer, gb=vol)

        world = VirtualMpi(torus, link_bandwidth=params.link_bandwidth)
        res = world.run(prog)
        assert res.time == pytest.approx(expected)
