"""Route-cache reuse in the virtual MPI engine.

The engine prebuilds routes lazily into an instance-level cache that is
valid for the construction-time fault set.  Scheduling mid-run fault
events must not discard that cache for the portion of the run *before*
the first event applies — only an applied event invalidates routes.
"""

from __future__ import annotations

from repro.faults import FaultEvent, FaultSet
from repro.simmpi import Recv, Send, SendRecv, VirtualMpi
from repro.topology import Torus


def antipodal(rank, size):
    yield SendRecv(peer=(rank + size // 2) % size, gb=0.5)


def counting_routes(monkeypatch):
    """Patch the engine's routing entry points to count invocations."""
    import repro.simmpi.engine as engine_mod

    calls = {"n": 0}
    real_dor = engine_mod.dimension_ordered_route
    real_far = engine_mod.fault_aware_route

    def dor(*args, **kwargs):
        calls["n"] += 1
        return real_dor(*args, **kwargs)

    def far(*args, **kwargs):
        calls["n"] += 1
        return real_far(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "dimension_ordered_route", dor)
    monkeypatch.setattr(engine_mod, "fault_aware_route", far)
    return calls


class TestPristineCacheReuse:
    def test_second_run_hits_cache_without_events(self, monkeypatch):
        world = VirtualMpi(Torus((4, 4)), link_bandwidth=2.0)
        calls = counting_routes(monkeypatch)
        world.run(antipodal)
        first = calls["n"]
        assert first > 0
        world.run(antipodal)
        assert calls["n"] == first  # every route served from the cache

    def test_pre_event_routes_hit_cache_with_scheduled_events(
        self, monkeypatch
    ):
        # A late event (after the 0.5 GB transfers complete at 2 GB/s)
        # must not stop the run from using the pristine route cache.
        late = FaultEvent(
            time=1e6, faults=FaultSet(failed_links=[((0, 0), (0, 1))])
        )
        world = VirtualMpi(
            Torus((4, 4)), link_bandwidth=2.0, fault_events=[late]
        )
        calls = counting_routes(monkeypatch)
        world.run(antipodal)
        first = calls["n"]
        assert first > 0
        # The instance cache was populated during the pre-event phase,
        # so a rerun of the same instance routes nothing anew.
        assert len(world._route_cache) > 0
        world.run(antipodal)
        assert calls["n"] == first

    def test_event_runs_match_eventless_results_pre_strike(self):
        # With the event far in the future the result must be identical
        # to a run with no events at all (cache reuse must not change
        # semantics).
        torus = Torus((4, 4))
        plain = VirtualMpi(torus, link_bandwidth=2.0).run(antipodal)
        late = FaultEvent(
            time=1e6, faults=FaultSet(failed_links=[((0, 0), (0, 1))])
        )
        evented = VirtualMpi(
            torus, link_bandwidth=2.0, fault_events=[late]
        ).run(antipodal)
        assert evented == plain

    def test_applied_event_invalidates_routes(self, monkeypatch):
        # Once an event actually strikes, routes must be recomputed —
        # the pristine cache may not serve post-event paths.
        ring = Torus((8,))

        def transfer(rank, size):
            if rank == 0:
                yield Send(dst=4, gb=8.0)
            elif rank == 4:
                yield Recv(src=0)

        event = FaultEvent(
            time=1.0, faults=FaultSet(failed_links=[((1,), (2,))])
        )
        world = VirtualMpi(ring, link_bandwidth=2.0, fault_events=[event])
        calls = counting_routes(monkeypatch)
        res = world.run(transfer)
        assert res.reroutes == 1
        after_first = calls["n"]
        # The pristine instance cache still holds only pre-event routes,
        # so a rerun re-derives the post-event route (deterministically).
        res2 = world.run(transfer)
        assert res2 == res
        assert calls["n"] > after_first

    def test_pristine_cache_not_polluted_by_event_routes(self):
        ring = Torus((8,))

        def transfer(rank, size):
            if rank == 0:
                yield Send(dst=4, gb=8.0)
            elif rank == 4:
                yield Recv(src=0)

        event = FaultEvent(
            time=1.0, faults=FaultSet(failed_links=[((1,), (2,))])
        )
        world = VirtualMpi(ring, link_bandwidth=2.0, fault_events=[event])
        first = world.run(transfer)
        # The instance cache holds exactly the pre-event (healthy)
        # route: same links as a fresh healthy engine would derive.
        healthy = VirtualMpi(ring, link_bandwidth=2.0)
        healthy.run(transfer)
        assert set(world._route_cache) == set(healthy._route_cache)
        for key, path in world._route_cache.items():
            assert path.tolist() == healthy._route_cache[key].tolist()
        # And the instance stays deterministically reusable.
        assert world.run(transfer) == first
