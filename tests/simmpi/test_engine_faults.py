"""VirtualMpi under faults: static sets, mid-run events, budgets."""

from __future__ import annotations

import pytest

from repro.simmpi import (
    Compute,
    EventBudgetError,
    FaultEvent,
    FaultSet,
    PartitionDisconnectedError,
    Recv,
    Send,
    SendRecv,
    VirtualMpi,
)
from repro.topology import Torus


def transfer(rank, size):
    """Rank 0 streams 8 GB to the antipodal rank of an 8-ring."""
    if rank == 0:
        yield Send(dst=4, gb=8.0)
    elif rank == 4:
        yield Recv(src=0)


class TestStaticFaults:
    def test_failed_link_run_wraps_around(self):
        ring = Torus((8,))
        healthy = VirtualMpi(ring, link_bandwidth=2.0).run(transfer)
        faults = FaultSet(failed_links=[((1,), (2,))])
        faulted = VirtualMpi(ring, link_bandwidth=2.0, faults=faults).run(
            transfer
        )
        # Same hop count the other way around: identical makespan.
        assert faulted.time == healthy.time == pytest.approx(4.0)
        assert faulted.reroutes == 0  # static faults routed from t=0
        assert faulted.degraded_flow_seconds == 0.0

    def test_degraded_link_slows_transfer(self):
        ring = Torus((8,))
        half = FaultSet(degraded_links={((0,), (1,)): 0.5})
        res = VirtualMpi(ring, link_bandwidth=2.0, faults=half).run(transfer)
        # Bottleneck 1 GB/s instead of 2: transfer takes twice as long.
        assert res.time == pytest.approx(8.0)
        assert res.degraded_flow_seconds == pytest.approx(8.0)

    def test_statically_disconnected_raises_before_deadlock(self):
        ring = Torus((8,))
        cut = FaultSet(failed_links=[((0,), (1,)), ((7,), (0,))])
        with pytest.raises(PartitionDisconnectedError) as exc_info:
            VirtualMpi(ring, link_bandwidth=2.0, faults=cut).run(transfer)
        assert exc_info.value.src == (0,)
        assert exc_info.value.dst == (4,)

    def test_static_fault_run_is_deterministic(self):
        torus = Torus((4, 4))
        faults = FaultSet(failed_links=[(((0, 0)), ((0, 1)))])

        def program(rank, size):
            yield SendRecv(peer=(rank + size // 2) % size, gb=0.5)

        world = VirtualMpi(torus, link_bandwidth=2.0, faults=faults)
        a = world.run(program)
        b = world.run(program)
        c = VirtualMpi(torus, link_bandwidth=2.0, faults=faults).run(program)
        assert a == b == c


class TestFaultEvents:
    def test_midrun_failure_reroutes_inflight_flow(self):
        ring = Torus((8,))
        event = FaultEvent(
            time=1.0, faults=FaultSet(failed_links=[((1,), (2,))])
        )
        res = VirtualMpi(
            ring, link_bandwidth=2.0, fault_events=[event]
        ).run(transfer)
        assert res.reroutes == 1
        # 1 s healthy progress (2 GB), then the remaining 6 GB restarts
        # on the wrap path at the same 2 GB/s: 1 + 3 = 4 s.
        assert res.time == pytest.approx(4.0)

    def test_event_after_finish_is_ignored(self):
        ring = Torus((8,))
        late = FaultEvent(
            time=100.0, faults=FaultSet(failed_links=[((1,), (2,))])
        )
        res = VirtualMpi(
            ring, link_bandwidth=2.0, fault_events=[late]
        ).run(transfer)
        assert res.time == pytest.approx(4.0)
        assert res.reroutes == 0

    def test_midrun_disconnection_aborts_with_report(self):
        ring = Torus((8,))
        cut = FaultSet(failed_links=[((0,), (1,)), ((7,), (0,))])
        world = VirtualMpi(
            ring,
            link_bandwidth=2.0,
            fault_events=[FaultEvent(time=1.0, faults=cut)],
        )
        with pytest.raises(PartitionDisconnectedError) as exc_info:
            world.run(transfer)
        report = exc_info.value.report
        assert report is not None
        assert report.time == pytest.approx(1.0)
        assert len(report.aborted_flows) == 1
        src_node, dst_node, remaining = report.aborted_flows[0]
        assert src_node == (0,) and dst_node == (4,)
        # 2 GB of the 8 GB moved before the cut.
        assert remaining == pytest.approx(6.0)
        assert len(report.failed_links) == 4

    def test_event_runs_are_deterministic(self):
        ring = Torus((8,))
        event = FaultEvent(
            time=1.0, faults=FaultSet(failed_links=[((1,), (2,))])
        )
        world = VirtualMpi(ring, link_bandwidth=2.0, fault_events=[event])
        a = world.run(transfer)
        b = world.run(transfer)
        assert a == b

    def test_events_sorted_regardless_of_input_order(self):
        ring = Torus((8,))
        e1 = FaultEvent(time=2.0, faults=FaultSet(failed_links=[((2,), (3,))]))
        e2 = FaultEvent(time=1.0, faults=FaultSet(failed_links=[((1,), (2,))]))
        res_a = VirtualMpi(
            ring, link_bandwidth=2.0, fault_events=[e1, e2]
        ).run(transfer)
        res_b = VirtualMpi(
            ring, link_bandwidth=2.0, fault_events=[e2, e1]
        ).run(transfer)
        assert res_a == res_b

    def test_fault_events_type_checked(self):
        with pytest.raises(TypeError):
            VirtualMpi(Torus((4,)), fault_events=[(1.0, FaultSet())])


class TestConstructorValidation:
    def test_tie_validated_eagerly(self):
        with pytest.raises(ValueError, match="tie"):
            VirtualMpi(Torus((4,)), tie="bogus")

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            VirtualMpi(Torus((4,)), max_events=0)
        with pytest.raises(ValueError):
            VirtualMpi(Torus((4,)), max_events=-5)


class TestEventBudget:
    def test_budget_error_names_state(self):
        ring = Torus((8,))

        def chatty(rank, size):
            peer = (rank + size // 2) % size
            for _ in range(50):
                yield SendRecv(peer=peer, gb=0.01)
                yield Compute(seconds=0.001)

        world = VirtualMpi(ring, link_bandwidth=2.0, max_events=10)
        with pytest.raises(EventBudgetError) as exc_info:
            world.run(chatty)
        msg = str(exc_info.value)
        assert "budget of 10" in msg
        assert "virtual time" in msg
        assert "flow" in msg and "computing" in msg

    def test_default_budget_is_ample(self):
        def pairing(rank, size):
            yield SendRecv(peer=(rank + size // 2) % size, gb=0.1)

        res = VirtualMpi(Torus((4,)), link_bandwidth=2.0).run(pairing)
        assert res.time > 0


class TestZeroRankWorld:
    def test_empty_world_zeroes(self):
        res = VirtualMpi(
            Torus((4,)), rank_to_node=[], link_bandwidth=2.0
        ).run(lambda rank, size: iter(()))
        assert res.time == 0.0
        assert res.total_gb_sent == 0.0
        assert res.max_compute_seconds == 0.0
        assert res.ranks == ()


class TestRepairEvents:
    def _world(self, events):
        from repro.simmpi import RepairEvent  # noqa: F401 (re-export)

        return VirtualMpi(
            Torus((8,)), link_bandwidth=2.0, fault_events=events
        )

    def test_fail_then_repair_restores_natural_route(self):
        from repro.simmpi import RepairEvent

        link = (((2,), (3,)),)
        world = self._world([
            FaultEvent(time=0.25, faults=FaultSet(failed_links=link)),
            RepairEvent(time=0.75, links=link),
        ])
        res = world.run(transfer)
        # The flow reroutes the long way at t=0.25 and snaps back to
        # the short arc when the link returns at t=0.75.
        assert res.reroutes == 1
        assert res.restores == 1
        # Both arcs of the 8-ring are 4 hops at full rate, so the
        # detour and the snap-back leave the makespan at 8 GB / 2 GB/s.
        assert res.time == pytest.approx(4.0)

    def test_repair_after_finish_is_ignored(self):
        from repro.simmpi import RepairEvent

        link = (((2,), (3,)),)
        world = self._world([
            FaultEvent(time=0.25, faults=FaultSet(failed_links=link)),
            RepairEvent(time=10_000.0, links=link),
        ])
        res = world.run(transfer)
        assert res.reroutes == 1
        assert res.restores == 0

    def test_repair_run_is_deterministic(self):
        from repro.simmpi import RepairEvent

        link = (((5,), (6,)),)
        events = [
            FaultEvent(time=0.5, faults=FaultSet(failed_links=link)),
            RepairEvent(time=1.5, links=link),
        ]
        a = self._world(events).run(transfer)
        b = self._world(events).run(transfer)
        assert a == b

    def test_repair_of_never_failed_link_rejected_at_construction(self):
        from repro.simmpi import RepairEvent

        with pytest.raises(ValueError, match="invalid repair event"):
            self._world([
                FaultEvent(
                    time=0.25,
                    faults=FaultSet(failed_links=[((2,), (3,))]),
                ),
                RepairEvent(time=0.75, links=[((5,), (6,))]),
            ])

    def test_repair_before_any_failure_rejected(self):
        from repro.simmpi import RepairEvent

        with pytest.raises(ValueError, match="invalid repair event"):
            self._world([RepairEvent(time=0.1, links=[((0,), (1,))])])

    def test_node_repair_restores_drained_rank(self):
        from repro.simmpi import RepairEvent

        # Fail a node far from the 0 -> 4 flow, then bring it back.
        world = self._world([
            FaultEvent(time=0.5, faults=FaultSet(failed_nodes=[(6,)])),
            RepairEvent(time=1.0, nodes=[(6,)]),
        ])
        res = world.run(transfer)
        # The transfer reroutes off the drained node's links at t=0.5
        # (its natural path 0->1->2->3->4 does not touch (6,), so no
        # reroute), and the repair restores the pristine network.
        assert res.time == pytest.approx(4.0)
