"""Unit tests for simmpi payloads and collective sub-programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simmpi import (
    Isend,
    Recv,
    Send,
    SendRecv,
    VirtualMpi,
    allgather_ring,
    alltoall_pairwise,
    broadcast_ring,
)
from repro.topology import Torus


@pytest.fixture
def world8():
    return VirtualMpi(Torus((8,)), link_bandwidth=2.0)


@pytest.fixture
def world4():
    return VirtualMpi(Torus((4,)), link_bandwidth=2.0)


class TestPayloads:
    def test_send_recv_payload_delivery(self, world4):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                yield Send(dst=1, gb=1.0, payload={"x": 42})
            elif rank == 1:
                seen["data"] = yield Recv(src=0)

        world4.run(prog)
        assert seen["data"] == {"x": 42}

    def test_numpy_payload_identity(self, world4):
        block = np.arange(16).reshape(4, 4)
        seen = {}

        def prog(rank, size):
            if rank == 0:
                yield Send(dst=2, gb=0.5, payload=block)
            elif rank == 2:
                seen["b"] = yield Recv(src=0)

        world4.run(prog)
        assert seen["b"] is block  # passed by reference

    def test_exchange_payloads_cross(self, world4):
        seen = {}

        def prog(rank, size):
            if rank < 2:
                got = yield SendRecv(
                    peer=1 - rank, gb=1.0, payload=f"from-{rank}"
                )
                seen[rank] = got

        world4.run(prog)
        assert seen == {0: "from-1", 1: "from-0"}

    def test_send_resumes_with_none(self, world4):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                seen["send"] = yield Send(dst=1, gb=1.0, payload="p")
            elif rank == 1:
                yield Recv(src=0)

        world4.run(prog)
        assert seen["send"] is None


class TestIsend:
    def test_sender_does_not_wait(self, world4):
        def prog(rank, size):
            if rank == 0:
                yield Isend(dst=1, gb=4.0)
            elif rank == 1:
                yield Recv(src=0)

        res = world4.run(prog)
        assert res.ranks[0].finish_time == pytest.approx(0.0)
        assert res.ranks[1].finish_time == pytest.approx(2.0)

    def test_eager_before_recv_posted(self, world4):
        seen = {}

        def prog(rank, size):
            if rank == 0:
                yield Isend(dst=1, gb=2.0, payload="early")
            elif rank == 1:
                from repro.simmpi import Compute

                yield Compute(seconds=5.0)
                seen["v"] = yield Recv(src=0)

        res = world4.run(prog)
        assert seen["v"] == "early"
        # Transfer starts only when the receiver posts: 5 + 1.
        assert res.time == pytest.approx(6.0)

    def test_isend_accounting(self, world4):
        def prog(rank, size):
            if rank == 0:
                yield Isend(dst=1, gb=3.0)
            elif rank == 1:
                yield Recv(src=0)

        res = world4.run(prog)
        assert res.ranks[0].gb_sent == pytest.approx(3.0)
        assert res.ranks[0].messages_sent == 1


class TestAllgather:
    @pytest.mark.parametrize("size_ranks", [2, 5, 8])
    def test_correct_result_all_sizes(self, size_ranks):
        world = VirtualMpi(Torus((8,)), rank_to_node=list(range(size_ranks)))
        results = {}

        def prog(rank, size):
            blocks = yield from allgather_ring(
                rank, size, f"blk{rank}", 0.5
            )
            results[rank] = blocks

        world.run(prog)
        expected = [f"blk{i}" for i in range(size_ranks)]
        assert all(results[r] == expected for r in range(size_ranks))

    def test_time_matches_ring_pipeline(self, world8):
        def prog(rank, size):
            yield from allgather_ring(rank, size, rank, 1.0)

        # 7 rounds; each round every +1 link carries one 1 GB block at
        # 2 GB/s, but rendezvous staging makes rounds 0.5 s each... the
        # engine overlaps the eager forwarding, so just bound it.
        t = world8.run(prog).time
        assert t == pytest.approx(7 * 0.5, rel=0.2)

    def test_single_rank(self):
        world = VirtualMpi(Torus((4,)), rank_to_node=[0])
        results = {}

        def prog(rank, size):
            results[rank] = yield from allgather_ring(rank, size, "x", 1.0)

        world.run(prog)
        assert results[0] == ["x"]


class TestAlltoall:
    @pytest.mark.parametrize("size_ranks", [2, 4, 6])
    def test_correct_result(self, size_ranks):
        world = VirtualMpi(
            Torus((8,)), rank_to_node=list(range(size_ranks))
        )
        results = {}

        def prog(rank, size):
            out = [f"{rank}->{j}" for j in range(size)]
            results[rank] = yield from alltoall_pairwise(rank, size, out, 0.2)

        world.run(prog)
        for r in range(size_ranks):
            assert results[r] == [
                f"{i}->{r}" for i in range(size_ranks)
            ]

    def test_wrong_block_count_rejected(self, world4):
        def prog(rank, size):
            yield from alltoall_pairwise(rank, size, [1, 2], 0.1)

        with pytest.raises(ValueError):
            world4.run(prog)


class TestBroadcast:
    @pytest.mark.parametrize("root", [0, 2, 3])
    def test_all_ranks_get_root_block(self, world4, root):
        results = {}

        def prog(rank, size):
            data = "gold" if rank == root else None
            results[rank] = yield from broadcast_ring(
                rank, size, data, 0.5, root=root
            )

        world4.run(prog)
        assert all(results[r] == "gold" for r in range(4))

    def test_pipeline_time(self, world4):
        def prog(rank, size):
            yield from broadcast_ring(rank, size, "d", 2.0, root=0)

        # 3 sequential 1-hop transfers of 2 GB at 2 GB/s.
        assert world4.run(prog).time == pytest.approx(3.0)


class TestDistributedComputation:
    def test_mini_summa_is_numerically_exact(self):
        """A 2x2 SUMMA with real NumPy blocks over the engine."""
        grid, n = 2, 8
        nb = n // grid
        rng = np.random.default_rng(0)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        out = {}

        def prog(rank, size):
            i, j = divmod(rank, grid)
            acc = np.zeros((nb, nb))
            row = [i * grid + c for c in range(grid)]
            col = [r * grid + j for r in range(grid)]
            for k in range(grid):
                a_blk = (
                    A[i * nb:(i + 1) * nb, k * nb:(k + 1) * nb]
                    if j == k else None
                )
                b_blk = (
                    B[k * nb:(k + 1) * nb, j * nb:(j + 1) * nb]
                    if i == k else None
                )
                if grid == 2:
                    # Broadcast in a 2-ring is a single exchange step.
                    a_panel = a_blk if a_blk is not None else None
                    peer = row[1 - j]
                    if a_blk is not None:
                        yield Isend(dst=peer, gb=0.01, payload=a_blk,
                                    tag=10 + k)
                        a_panel = a_blk
                    else:
                        a_panel = yield Recv(src=peer, tag=10 + k)
                    peer = col[1 - i]
                    if b_blk is not None:
                        yield Isend(dst=peer, gb=0.01, payload=b_blk,
                                    tag=20 + k)
                        b_panel = b_blk
                    else:
                        b_panel = yield Recv(src=peer, tag=20 + k)
                acc = acc + a_panel @ b_panel
            out[(i, j)] = acc

        world = VirtualMpi(Torus((4,)), rank_to_node=[0, 1, 2, 3])
        world.run(prog)
        C = np.zeros((n, n))
        for (i, j), blk in out.items():
            C[i * nb:(i + 1) * nb, j * nb:(j + 1) * nb] = blk
        assert np.allclose(C, A @ B)
