"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestMachines:
    def test_lists_catalog(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("Mira", "JUQUEEN", "Sequoia", "JUQUEEN-48"):
            assert name in out


class TestAnalyze:
    def test_juqueen_improvable(self, capsys):
        assert main(["analyze", "juqueen", "--improvable-only"]) == 0
        out = capsys.readouterr().out
        assert "6 x 1 x 1 x 1" in out
        assert "x2.00" in out

    def test_unknown_machine_exit_2(self, capsys):
        assert main(["analyze", "summit"]) == 2
        assert "error" in capsys.readouterr().err


class TestGeometry:
    def test_inspect(self, capsys):
        assert main(["geometry", "3", "2", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "2048" in out
        assert "12288" in out

    def test_invalid_geometry(self, capsys):
        assert main(["geometry", "2", "2", "2", "2", "2"]) == 2


class TestPairing:
    def test_small_run(self, capsys):
        assert main(["pairing", "1", "1", "1", "1", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "time" in out


class TestTables:
    @pytest.mark.parametrize("n", ["1", "2", "5"])
    def test_tables_render(self, n, capsys):
        assert main(["table", n]) == 0
        assert f"Table {n}" in capsys.readouterr().out

    def test_table_8_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "8"])


class TestFigureCommand:
    @pytest.mark.parametrize("n", ["1", "2", "7"])
    def test_combinatorial_figures_render(self, n, capsys):
        assert main(["figure", n]) == 0
        assert f"Figure {n}" in capsys.readouterr().out


class TestFaults:
    def test_mira_table_renders(self, capsys):
        code = main(
            ["faults", "--machine", "mira", "--size", "16",
             "--max-failures", "2", "--trials", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "surviving bisection" in out
        # Healthy k = 0 row shows the Table 1 values.
        assert "1024" in out and "2048" in out
        assert "100%" in out

    def test_deterministic_output(self, capsys):
        argv = ["faults", "--max-failures", "1", "--trials", "2",
                "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_unknown_machine_exit_2(self, capsys):
        assert main(["faults", "--machine", "summit"]) == 2
        assert "error" in capsys.readouterr().err


class TestJobsHelpWording:
    """Guard the two jobs-like flags against wording drift.

    ``--num-jobs`` is the *stream length* of the variability experiment;
    ``--jobs`` is the *worker process count* of any parallel sweep.  The
    help text must keep the distinction explicit.
    """

    def test_variability_help_distinguishes_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["variability", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--num-jobs" in out
        assert "worker processes" in out
        # The stream-length flag must not be described as workers.
        num_jobs_lines = [
            line for line in out.splitlines() if "--num-jobs" in line
        ]
        assert num_jobs_lines
        assert not any("worker" in line for line in num_jobs_lines)

    @pytest.mark.parametrize(
        "cmd", ["pairing", "design-search", "faults"]
    )
    def test_jobs_flag_means_workers(self, cmd, capsys):
        with pytest.raises(SystemExit) as exc:
            main([cmd, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        jobs_lines_start = out.find("--jobs")
        assert jobs_lines_start != -1
        assert "worker processes" in out

    def test_docs_use_num_jobs_for_variability(self):
        """Drift guard: any documented ``variability`` invocation must
        use ``--num-jobs`` for the stream length (renamed from
        ``--jobs``, which now means worker count)."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        docs = [root / "README.md", root / "EXPERIMENTS.md"]
        docs += sorted((root / "docs").glob("*.md"))
        offenders = []
        for doc in docs:
            if not doc.exists():
                continue
            for i, line in enumerate(
                doc.read_text().splitlines(), start=1
            ):
                if "variability" in line and "--jobs" in line:
                    if "--num-jobs" not in line.replace("--jobs", "", 1):
                        offenders.append(f"{doc.name}:{i}: {line.strip()}")
        assert not offenders, (
            "variability invocations must use --num-jobs for the stream "
            "length:\n" + "\n".join(offenders)
        )


class TestAdvise:
    def test_wait_recommendation(self, capsys):
        code = main(
            ["advise", "juqueen", "8", "4", "2", "1", "1",
             "--wait", "60", "--runtime", "3600", "--fraction", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WAIT" in out

    def test_allocate_recommendation(self, capsys):
        code = main(
            ["advise", "juqueen", "8", "2", "2", "2", "1",
             "--wait", "60"]
        )
        assert code == 0
        assert "ALLOCATE" in capsys.readouterr().out

    def test_bad_size(self, capsys):
        assert main(["advise", "juqueen", "11", "11", "1", "1", "1"]) == 2


class TestCheckpointFlag:
    @pytest.mark.parametrize("argv", [
        ["pairing", "--sweep", "mira", "--checkpoint", "c.jsonl"],
        ["design-search", "juqueen", "--checkpoint", "c.jsonl"],
        ["variability", "mira", "16", "--checkpoint", "c.jsonl"],
        ["faults", "--checkpoint", "c.jsonl"],
    ])
    def test_all_sweep_commands_accept_checkpoint(self, argv):
        args = build_parser().parse_args(argv)
        assert args.checkpoint == "c.jsonl"

    def test_checkpoint_defaults_to_none(self):
        args = build_parser().parse_args(["faults"])
        assert args.checkpoint is None

    def test_faults_checkpoint_resume_same_output(self, tmp_path, capsys):
        argv = [
            "faults", "--machine", "mira", "--size", "16",
            "--max-failures", "1", "--trials", "2",
            "--checkpoint", str(tmp_path / "ck.jsonl"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert (tmp_path / "ck.jsonl").exists()


class TestFaultsFluidSweep:
    def test_fluid_sweep_renders_rows(self, capsys):
        assert main([
            "faults", "--machine", "mira", "--size", "4",
            "--max-failures", "1", "--trials", "1", "--fluid-sweep",
        ]) == 0
        out = capsys.readouterr().out
        assert "flow-level surviving bisection" in out
        assert "ok" in out

    def test_degraded_rows_render_witness(self, capsys, monkeypatch):
        from repro.experiments import faultstudy as fs
        from repro.experiments.faultstudy import FaultScenarioRow
        from repro.faults import DegradedResult, FaultSet

        rows = [
            FaultScenarioRow(failures=0, trial=0, seed=0, bandwidth=16.0),
            FaultScenarioRow(
                failures=1, trial=0, seed=1000, bandwidth=12.0,
                degraded=DegradedResult(
                    scenario=(1, 0),
                    faults=FaultSet(failed_links=[((0, 0), (0, 1))]),
                    witness=((0, 0), (2, 0)),
                    disconnected_flows=2,
                ),
            ),
        ]
        monkeypatch.setattr(
            fs, "fluid_fault_sweep", lambda *a, **k: rows
        )
        assert main([
            "faults", "--machine", "mira", "--size", "16",
            "--fluid-sweep",
        ]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED (2 flows cut" in out
        assert "(0, 0)-(2, 0)" in out
        assert "1 degraded" in out
