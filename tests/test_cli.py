"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestMachines:
    def test_lists_catalog(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("Mira", "JUQUEEN", "Sequoia", "JUQUEEN-48"):
            assert name in out


class TestAnalyze:
    def test_juqueen_improvable(self, capsys):
        assert main(["analyze", "juqueen", "--improvable-only"]) == 0
        out = capsys.readouterr().out
        assert "6 x 1 x 1 x 1" in out
        assert "x2.00" in out

    def test_unknown_machine_exit_2(self, capsys):
        assert main(["analyze", "summit"]) == 2
        assert "error" in capsys.readouterr().err


class TestGeometry:
    def test_inspect(self, capsys):
        assert main(["geometry", "3", "2", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert "2048" in out
        assert "12288" in out

    def test_invalid_geometry(self, capsys):
        assert main(["geometry", "2", "2", "2", "2", "2"]) == 2


class TestPairing:
    def test_small_run(self, capsys):
        assert main(["pairing", "1", "1", "1", "1", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "time" in out


class TestTables:
    @pytest.mark.parametrize("n", ["1", "2", "5"])
    def test_tables_render(self, n, capsys):
        assert main(["table", n]) == 0
        assert f"Table {n}" in capsys.readouterr().out

    def test_table_8_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "8"])


class TestFigureCommand:
    @pytest.mark.parametrize("n", ["1", "2", "7"])
    def test_combinatorial_figures_render(self, n, capsys):
        assert main(["figure", n]) == 0
        assert f"Figure {n}" in capsys.readouterr().out


class TestFaults:
    def test_mira_table_renders(self, capsys):
        code = main(
            ["faults", "--machine", "mira", "--size", "16",
             "--max-failures", "2", "--trials", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "surviving bisection" in out
        # Healthy k = 0 row shows the Table 1 values.
        assert "1024" in out and "2048" in out
        assert "100%" in out

    def test_deterministic_output(self, capsys):
        argv = ["faults", "--max-failures", "1", "--trials", "2",
                "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_unknown_machine_exit_2(self, capsys):
        assert main(["faults", "--machine", "summit"]) == 2
        assert "error" in capsys.readouterr().err


class TestAdvise:
    def test_wait_recommendation(self, capsys):
        code = main(
            ["advise", "juqueen", "8", "4", "2", "1", "1",
             "--wait", "60", "--runtime", "3600", "--fraction", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "WAIT" in out

    def test_allocate_recommendation(self, capsys):
        code = main(
            ["advise", "juqueen", "8", "2", "2", "2", "1",
             "--wait", "60"]
        )
        assert code == 0
        assert "ALLOCATE" in capsys.readouterr().out

    def test_bad_size(self, capsys):
        assert main(["advise", "juqueen", "11", "11", "1", "1", "1"]) == 2
