"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.topology import CliqueProduct, Hypercube, Mesh, Torus


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden fixtures under tests/analysis/golden/ "
        "from the current code instead of comparing against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run should rewrite golden fixtures."""
    return bool(request.config.getoption("--update-golden"))


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Export the session's observability trace when one was requested.

    Running the suite with ``REPRO_TRACE=/path/to/trace.jsonl`` collects
    spans/counters across every test in this process and writes them out
    here (the traced CI leg uploads the file as an artifact).  A bare
    truthy value (``REPRO_TRACE=1``) enables collection without export.
    """
    from repro import observability

    path = observability.env_trace_path()
    if path and observability.enabled():
        n = observability.export_jsonl(path)
        print(f"\nrepro trace: {n} records -> {path}")


@pytest.fixture
def small_torus() -> Torus:
    """A small non-cubic torus usable with the brute-force oracle."""
    return Torus((4, 3, 2))


@pytest.fixture
def q3() -> Hypercube:
    return Hypercube(3)


@pytest.fixture
def grid44() -> Mesh:
    return Mesh((4, 4))


@pytest.fixture
def k32() -> CliqueProduct:
    return CliqueProduct((3, 2))


@pytest.fixture
def mira_4mp_current() -> PartitionGeometry:
    return PartitionGeometry((4, 1, 1, 1))


@pytest.fixture
def mira_4mp_proposed() -> PartitionGeometry:
    return PartitionGeometry((2, 2, 1, 1))
