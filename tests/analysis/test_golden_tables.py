"""Golden-value regression tests for the paper's headline tables.

Tables 1 (Mira) and 2 (JUQUEEN) are the paper's core claim: for each
improvable partition size, the current geometry, the proposed geometry,
their bisection bandwidths, and the improvement factor.  The expected
values live as checked-in JSON fixtures under ``tests/analysis/golden/``
so that any refactor of the allocation stack (enumeration order,
memoization, parallel sweeps) that perturbs a single cell fails loudly.

Regenerate the fixtures after an *intentional* change with::

    PYTHONPATH=src python -m pytest tests/analysis/test_golden_tables.py \
        --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.tables import table1, table2

GOLDEN_DIR = Path(__file__).parent / "golden"


def _snapshot_table1() -> list[dict]:
    rows = []
    for row in table1():
        rows.append(
            {
                "nodes": row["nodes"],
                "midplanes": row["midplanes"],
                "current": list(row["current"]),
                "current_bw": row["current_bw"],
                "proposed": list(row["proposed"]),
                "proposed_bw": row["proposed_bw"],
                "improvement": round(
                    row["proposed_bw"] / row["current_bw"], 6
                ),
            }
        )
    return rows


def _snapshot_table2() -> list[dict]:
    rows = []
    for row in table2():
        rows.append(
            {
                "nodes": row["nodes"],
                "midplanes": row["midplanes"],
                "worst": list(row["worst"]),
                "worst_bw": row["worst_bw"],
                "best": list(row["best"]),
                "best_bw": row["best_bw"],
                "improvement": round(row["best_bw"] / row["worst_bw"], 6),
            }
        )
    return rows


CASES = [
    ("mira_table1.json", _snapshot_table1),
    ("juqueen_table2.json", _snapshot_table2),
]


@pytest.mark.parametrize("filename,snapshot", CASES)
def test_golden_table(filename, snapshot, update_golden):
    path = GOLDEN_DIR / filename
    actual = snapshot()
    if update_golden:
        path.write_text(json.dumps(actual, indent=2) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden fixture {path} missing; run with --update-golden to "
        "create it"
    )
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"{filename} drifted from the golden fixture; if the change is "
        "intentional, rerun with --update-golden"
    )


class TestGoldenSanity:
    """The fixtures themselves must encode the paper's headline claims."""

    def test_table1_headline(self):
        rows = json.loads((GOLDEN_DIR / "mira_table1.json").read_text())
        assert len(rows) == 4  # 4, 8, 16, 24 midplanes
        by_size = {r["midplanes"]: r for r in rows}
        assert by_size[16]["improvement"] == 2.0
        assert by_size[16]["current_bw"] == 1024
        assert by_size[16]["proposed_bw"] == 2048

    def test_table2_headline(self):
        rows = json.loads(
            (GOLDEN_DIR / "juqueen_table2.json").read_text()
        )
        assert rows, "Table 2 golden fixture is empty"
        for r in rows:
            assert r["improvement"] > 1.0
            assert r["best_bw"] == pytest.approx(
                r["worst_bw"] * r["improvement"], rel=1e-5
            )
