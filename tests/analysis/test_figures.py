"""Tests for regenerated figure series (combinatorial figures exact;
experiment figures exercised at reduced scale — full scale runs in the
benchmark harnesses)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    FIGURE_3_MIDPLANES,
    FIGURE_4_MIDPLANES,
    figure1,
    figure2,
    figure7,
)
from repro.analysis import paperdata


class TestFigure1:
    def test_series_cover_mira_sizes(self):
        fig = figure1()
        assert sorted(fig["current"]) == [1, 2, 4, 8, 16, 24, 32, 48, 64, 96]

    def test_values_match_table6(self):
        fig = figure1()
        for row in paperdata.TABLE_6_MIRA_FULL:
            mp = row["midplanes"]
            assert fig["current"][mp] == row["current_bw"]
            expected = row["proposed_bw"] or row["current_bw"]
            assert fig["proposed"][mp] == expected

    def test_proposed_dominates(self):
        fig = figure1()
        for mp, bw in fig["current"].items():
            assert fig["proposed"][mp] >= bw


class TestFigure2:
    def test_series_cover_juqueen_sizes(self):
        fig = figure2()
        assert min(fig["best"]) == 1
        assert max(fig["best"]) == 56

    def test_values_match_table7(self):
        fig = figure2()
        for row in paperdata.TABLE_7_JUQUEEN_FULL:
            mp = row["midplanes"]
            assert fig["worst"][mp] == row["worst_bw"]
            expected = row["best_bw"] or row["worst_bw"]
            assert fig["best"][mp] == expected

    def test_spiking_drops_at_forced_ring_sizes(self):
        """Figure 2's caption: sizes that force rings drop to 256."""
        fig = figure2()
        assert fig["best"][5] == 256
        assert fig["best"][7] == 256
        assert fig["best"][4] == 512  # neighbors are higher
        assert fig["best"][8] == 1024


class TestFigure7:
    def test_matches_table5(self):
        fig = figure7()
        for size, entry in paperdata.TABLE_5_MACHINE_DESIGN.items():
            for machine, want in entry.items():
                got = fig[machine].get(size)
                if want is None:
                    assert got is None
                else:
                    assert got == want[1]

    def test_hypotheticals_dominate(self):
        fig = figure7()
        for size, bw in fig["JUQUEEN"].items():
            for other in ("JUQUEEN-48", "JUQUEEN-54"):
                o = fig[other].get(size)
                if bw is not None and o is not None:
                    assert o >= bw


class TestExperimentFigureAxes:
    def test_figure3_axis(self):
        assert FIGURE_3_MIDPLANES == (4, 8, 16, 24)

    def test_figure4_axis(self):
        assert FIGURE_4_MIDPLANES == (4, 6, 8, 12, 16)
