"""Internal-consistency checks of the transcribed paper data.

These tests validate the ground-truth constants *against themselves* and
against the Blue Gene/Q bandwidth formula — catching transcription
mistakes independently of the regeneration code.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import paperdata
from repro.machines.bgq import normalized_bisection_bandwidth


def _check_row_bw(dims, bw):
    assert normalized_bisection_bandwidth(dims) == bw, dims


class TestBandwidthFormulaConsistency:
    def test_table1(self):
        for row in paperdata.TABLE_1_MIRA_IMPROVED:
            _check_row_bw(row["current"], row["current_bw"])
            _check_row_bw(row["proposed"], row["proposed_bw"])

    def test_table2(self):
        for row in paperdata.TABLE_2_JUQUEEN_IMPROVED:
            _check_row_bw(row["worst"], row["worst_bw"])
            _check_row_bw(row["best"], row["best_bw"])

    def test_table5(self):
        for entry in paperdata.TABLE_5_MACHINE_DESIGN.values():
            for val in entry.values():
                if val is not None:
                    _check_row_bw(val[0], val[1])

    def test_table6(self):
        for row in paperdata.TABLE_6_MIRA_FULL:
            _check_row_bw(row["current"], row["current_bw"])
            if row["proposed"] is not None:
                _check_row_bw(row["proposed"], row["proposed_bw"])

    def test_table7(self):
        for row in paperdata.TABLE_7_JUQUEEN_FULL:
            _check_row_bw(row["worst"], row["worst_bw"])
            if row["best"] is not None:
                _check_row_bw(row["best"], row["best_bw"])


class TestStructuralConsistency:
    def test_node_counts_512_per_midplane(self):
        for table in (
            paperdata.TABLE_1_MIRA_IMPROVED,
            paperdata.TABLE_2_JUQUEEN_IMPROVED,
            paperdata.TABLE_6_MIRA_FULL,
            paperdata.TABLE_7_JUQUEEN_FULL,
        ):
            for row in table:
                assert row["nodes"] == 512 * row["midplanes"]

    def test_geometry_sizes_match_midplane_counts(self):
        for row in paperdata.TABLE_6_MIRA_FULL:
            assert math.prod(row["current"]) == row["midplanes"]
            if row["proposed"] is not None:
                assert math.prod(row["proposed"]) == row["midplanes"]

    def test_table5_sizes_match(self):
        for size, entry in paperdata.TABLE_5_MACHINE_DESIGN.items():
            for val in entry.values():
                if val is not None:
                    assert math.prod(val[0]) == size

    def test_improved_tables_subset_of_full(self):
        full6 = {r["midplanes"]: r for r in paperdata.TABLE_6_MIRA_FULL}
        for row in paperdata.TABLE_1_MIRA_IMPROVED:
            assert full6[row["midplanes"]]["proposed"] == row["proposed"]
        full7 = {r["midplanes"]: r for r in paperdata.TABLE_7_JUQUEEN_FULL}
        for row in paperdata.TABLE_2_JUQUEEN_IMPROVED:
            assert full7[row["midplanes"]]["best"] == row["best"]

    def test_table3_rank_counts_factor(self):
        from repro.kernels.caps import split_rank_count

        for row in paperdata.TABLE_3_MATMUL_PARAMS:
            f, k = split_rank_count(row["ranks"])
            assert k >= 4  # at least four 7-way BFS steps

    def test_table4_ranks_on_nodes(self):
        for row in paperdata.TABLE_4_STRONG_SCALING:
            # Ranks fit under the core cap.
            per_node = -(-row["ranks"] // row["nodes"])
            assert per_node <= row["max_cores"]


class TestMeasuredValueSanity:
    def test_figure5_proposed_faster(self):
        for v in paperdata.FIGURE_5_COMM_TIMES.values():
            assert v["proposed"] < v["current"]

    def test_figure5_ratios_in_stated_range(self):
        lo, hi = paperdata.MATMUL_COMM_RATIO_RANGE
        for mp, v in paperdata.FIGURE_5_COMM_TIMES.items():
            ratio = v["current"] / v["proposed"]
            assert lo - 0.06 <= ratio <= hi + 0.07, (mp, ratio)

    def test_figure6_monotone_decreasing(self):
        for series in paperdata.FIGURE_6_STRONG_SCALING_TIMES.values():
            times = [series[k] for k in sorted(series)]
            assert times == sorted(times, reverse=True)

    def test_pairing_predictions(self):
        assert paperdata.PAIRING_PREDICTED_RATIOS[4] == 2.0
        assert paperdata.PAIRING_PREDICTED_RATIOS[24] == 1.5
        assert paperdata.PAIRING_MEASURED_RATIO_FLOOR == 1.92
