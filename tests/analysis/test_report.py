"""Unit tests for ASCII report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_geometry, render_series, render_table


class TestFormatGeometry:
    def test_tuple(self):
        assert format_geometry((4, 2, 1, 1)) == "4 x 2 x 1 x 1"

    def test_none(self):
        assert format_geometry(None) == "-"


class TestRenderTable:
    def test_basic_rendering(self):
        out = render_table(
            [{"a": 1, "b": (2, 1)}, {"a": 22, "b": None}],
            ["a", "b"],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2 x 1" in out
        assert "-" in lines[-1]

    def test_floats_compact(self):
        out = render_table([{"x": 0.123456}], ["x"])
        assert "0.1235" in out

    def test_column_alignment(self):
        out = render_table(
            [{"a": "x"}, {"a": "longer"}], ["a"], headers=["A"]
        )
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to equal width

    def test_header_mismatch(self):
        with pytest.raises(ValueError):
            render_table([], ["a", "b"], headers=["only"])

    def test_empty_rows(self):
        out = render_table([], ["a"])
        assert "a" in out


class TestRenderSeries:
    def test_multiple_series(self):
        out = render_series(
            {"up": {1: 1.0, 2: 2.0}, "down": {1: 2.0, 2: 1.0}},
            title="S",
        )
        assert "up" in out and "down" in out
        assert out.splitlines()[0] == "S"

    def test_missing_points_dash(self):
        out = render_series({"a": {1: 1.0}, "b": {2: 2.0}})
        assert "-" in out

    def test_custom_format(self):
        out = render_series({"a": {1: 0.5}}, y_format="{:.1f}")
        assert "0.5" in out

    def test_x_values_sorted(self):
        out = render_series({"a": {3: 1.0, 1: 2.0, 2: 3.0}})
        body = out.splitlines()[2:]
        xs = [int(line.split()[0]) for line in body]
        assert xs == [1, 2, 3]
