"""Unit tests for kernel contention-bound analysis."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.analysis.contention import (
    caps_contention,
    geometry_sensitivity,
    nbody_contention,
    summa_contention,
)


@pytest.fixture
def worse():
    return PartitionGeometry((4, 1, 1, 1))


@pytest.fixture
def better():
    return PartitionGeometry((2, 2, 1, 1))


class TestBounds:
    def test_caps_bound_positive(self, worse):
        b = caps_contention(worse, num_ranks=2401, matrix_dim=9408)
        assert b.bound_seconds > 0
        assert b.kernel == "caps-strassen"

    def test_bound_inverse_in_bandwidth(self, worse, better):
        a = caps_contention(worse, 2401, 9408)
        b = caps_contention(better, 2401, 9408)
        assert a.bound_seconds == pytest.approx(2 * b.bound_seconds)

    def test_summa_bound(self, worse):
        b = summa_contention(worse, num_ranks=2401, matrix_dim=9408)
        assert b.kernel == "summa-classical"
        assert b.bound_seconds > 0

    def test_nbody_bound(self, worse):
        b = nbody_contention(worse, num_ranks=2048, num_bodies=10**6)
        assert b.kernel == "nbody-direct"
        assert b.bound_seconds > 0


class TestSensitivity:
    def test_sensitivity_is_bandwidth_ratio(self, worse, better):
        a = caps_contention(worse, 2401, 9408)
        b = caps_contention(better, 2401, 9408)
        assert geometry_sensitivity(a, b) == pytest.approx(2.0)

    def test_cross_kernel_comparison_rejected(self, worse):
        a = caps_contention(worse, 2401, 9408)
        b = summa_contention(worse, 2401, 9408)
        with pytest.raises(ValueError):
            geometry_sensitivity(a, b)

    def test_nbody_has_higher_absolute_floor_than_caps(self, worse):
        """The paper's future-work claim: direct N-body's contention
        floor exceeds fast matmul's at matched memory footprint."""
        ranks = 2401
        n = 9408
        caps = caps_contention(worse, ranks, n)
        nbody = nbody_contention(worse, ranks, num_bodies=n * n // ranks * ranks)
        assert nbody.bound_seconds > caps.bound_seconds
