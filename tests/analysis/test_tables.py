"""Cross-check every regenerated table against the paper's ground truth."""

from __future__ import annotations

import pytest

from repro.analysis import paperdata, tables


class TestTable1:
    def test_matches_paper_exactly(self):
        assert tables.table1() == paperdata.TABLE_1_MIRA_IMPROVED


class TestTable2:
    def test_matches_paper_exactly(self):
        assert tables.table2() == paperdata.TABLE_2_JUQUEEN_IMPROVED


class TestTable3:
    def test_parameters_carried_through(self):
        rows = tables.table3()
        assert [r["midplanes"] for r in rows] == [4, 8, 16, 24]
        for got, want in zip(rows, paperdata.TABLE_3_MATMUL_PARAMS):
            for key in ("nodes", "ranks", "max_cores", "matrix_dim"):
                assert got[key] == want[key]

    def test_avg_cores_recomputed(self):
        rows = {r["midplanes"]: r for r in tables.table3()}
        assert rows[4]["avg_cores"] == pytest.approx(15.24, abs=0.01)
        assert rows[24]["avg_cores"] == pytest.approx(9.57, abs=0.01)

    def test_computation_model_close_to_paper(self):
        rows = {r["midplanes"]: r for r in tables.table3()}
        for mp, measured in paperdata.COMPUTATION_TIMES_SECONDS.items():
            model = rows[mp]["computation_time_model"]
            assert model == pytest.approx(measured, rel=0.5), mp


class TestTable4:
    def test_bandwidths_match_paper(self):
        rows = tables.table4()
        for got, want in zip(rows, paperdata.TABLE_4_STRONG_SCALING):
            assert got["current_bw"] == want["current_bw"]
            assert got["proposed_bw"] == want["proposed_bw"]

    def test_avg_cores(self):
        for row in tables.table4():
            assert row["avg_cores"] == pytest.approx(2.34, abs=0.01)


class TestTable5:
    def test_matches_paper_cell_by_cell(self):
        got = tables.table5()
        for size, entry in paperdata.TABLE_5_MACHINE_DESIGN.items():
            assert size in got, size
            for machine, want in entry.items():
                have = got[size].get(machine)
                if want is None:
                    assert have is None, (size, machine)
                else:
                    assert have is not None, (size, machine)
                    assert tuple(have[0]) == tuple(want[0]), (size, machine)
                    assert have[1] == want[1], (size, machine)

    def test_no_extra_sizes_beyond_union(self):
        got = tables.table5()
        assert set(paperdata.TABLE_5_MACHINE_DESIGN) <= set(got)


class TestTable6:
    def test_matches_paper_exactly(self):
        assert tables.table6() == paperdata.TABLE_6_MIRA_FULL


class TestTable7:
    def test_matches_paper_exactly(self):
        assert tables.table7() == paperdata.TABLE_7_JUQUEEN_FULL
