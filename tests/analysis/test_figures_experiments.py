"""Scaled-down smoke tests for the experiment figures (3-6).

The full-scale versions run in the benchmark harnesses; here we verify
the figure functions produce correctly-shaped data quickly by using
reduced parameters.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import figure3, figure4
from repro.experiments.pairing import PairingParameters

FAST = PairingParameters(rounds=1, chunks_per_round=1)


@pytest.mark.parametrize("fig,keys", [
    (figure3, ("current", "proposed")),
    (figure4, ("worst", "proposed")),
])
def test_pairing_figures_structure(fig, keys):
    data = fig(FAST)
    assert set(data) == set(keys)
    worse, better = (data[k] for k in keys)
    assert set(worse) == set(better)
    for mp in worse:
        assert worse[mp] >= better[mp] > 0


def test_figure3_ratios_fast(fig=figure3):
    data = fig(FAST)
    for mp in (4, 8, 16):
        assert data["current"][mp] / data["proposed"][mp] == pytest.approx(
            2.0, rel=0.05
        )


def test_figure4_six_midplane_caption_fact():
    data = figure4(FAST)
    assert data["proposed"][6] / data["proposed"][4] == pytest.approx(
        1.5, rel=0.02
    )
