"""The REPRO_CHECK runtime contract sanitizer (repro.contracts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import contracts
from repro.netsim.batchroute import PathMatrix
from repro.netsim.fairness import max_min_fair_rates
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import dimension_ordered_route
from repro.netsim.traffic import bisection_pairing
from repro.topology.torus import Torus


@pytest.fixture
def checks_on(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")


@pytest.fixture
def checks_off(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)


def small_problem():
    t = Torus((4, 2, 2))
    net = LinkNetwork(t)
    paths = [
        net.path_to_links(dimension_ordered_route(t, s, d))
        for s, d in bisection_pairing(t)
    ]
    return net, paths


class TestEnabled:
    def test_off_by_default(self, checks_off):
        assert contracts.enabled() is False

    def test_follows_env(self, checks_on):
        assert contracts.enabled() is True


class TestCheckArray:
    def test_accepts_conforming_array(self):
        contracts.check_array(
            "x", np.zeros(4), dtype=np.float64, ndim=1,
            finite=True, nonnegative=True,
        )

    def test_type_mismatch(self):
        with pytest.raises(contracts.ContractError, match="ndarray"):
            contracts.check_array("x", [1, 2, 3])

    def test_dtype_mismatch(self):
        with pytest.raises(contracts.ContractError, match="dtype"):
            contracts.check_array(
                "x", np.zeros(4, dtype=np.float32), dtype=np.float64
            )

    def test_ndim_mismatch(self):
        with pytest.raises(contracts.ContractError, match="1-D"):
            contracts.check_array("x", np.zeros((2, 2)), ndim=1)

    def test_noncontiguous_rejected(self):
        view = np.zeros(8)[::2]
        with pytest.raises(contracts.ContractError, match="contiguous"):
            contracts.check_array("x", view)

    def test_nan_rejected_when_finite(self):
        arr = np.array([1.0, np.nan, 3.0])
        with pytest.raises(contracts.ContractError, match="index 1"):
            contracts.check_array("x", arr, finite=True)

    def test_inf_rejected_when_finite(self):
        with pytest.raises(contracts.ContractError, match="non-finite"):
            contracts.check_array("x", np.array([np.inf]), finite=True)

    def test_negative_rejected(self):
        with pytest.raises(contracts.ContractError, match="negative"):
            contracts.check_array(
                "x", np.array([0.0, -1.0]), nonnegative=True
            )

    def test_writable_rejected_when_readonly(self):
        arr = np.zeros(4)
        with pytest.raises(contracts.ContractError, match="read-only"):
            contracts.check_array("x", arr, readonly=True)
        arr.flags.writeable = False
        contracts.check_array("x", arr, readonly=True)

    def test_checks_never_copy_or_modify(self):
        arr = np.arange(6, dtype=np.float64)
        arr.flags.writeable = False
        before = arr.copy()
        contracts.check_array(
            "x", arr, dtype=np.float64, ndim=1, finite=True,
            nonnegative=True, readonly=True,
        )
        np.testing.assert_array_equal(arr, before)


class TestInstrumentedEntryPoints:
    def test_path_matrix_construction_passes(self, checks_on):
        net, paths = small_problem()
        pm = PathMatrix.from_paths(paths)
        contracts.check_path_matrix(pm)

    def test_nan_capacities_rejected_at_solver(self, checks_on):
        net, paths = small_problem()
        pm = PathMatrix.from_paths(paths)
        caps = np.full(net.num_links, 1.0)
        caps[3] = np.nan
        with pytest.raises(contracts.ContractError, match="capacities"):
            max_min_fair_rates(pm, caps)

    def test_nan_capacities_pass_silently_when_off(self, checks_off):
        # Without REPRO_CHECK the solver trusts its inputs (and its
        # own eager validation still catches what it always caught).
        net, paths = small_problem()
        pm = PathMatrix.from_paths(paths)
        caps = np.full(net.num_links, 1.0)
        with pytest.raises(ValueError):
            max_min_fair_rates(pm, np.full(net.num_links, -1.0))
        rates = max_min_fair_rates(pm, caps)
        assert np.isfinite(rates).all()

    def test_results_bit_identical_on_and_off(self, monkeypatch):
        net, paths = small_problem()
        caps = net.capacities.astype(np.float64)

        monkeypatch.delenv("REPRO_CHECK", raising=False)
        pm_off = PathMatrix.from_paths(paths)
        rates_off = max_min_fair_rates(pm_off, caps)

        monkeypatch.setenv("REPRO_CHECK", "1")
        pm_on = PathMatrix.from_paths(paths)
        rates_on = max_min_fair_rates(pm_on, caps)

        assert rates_on.tobytes() == rates_off.tobytes()

    def test_stacked_construction_rejects_inf_capacity(self, checks_on):
        from repro.netsim.stacked import StackedPathMatrix

        net, paths = small_problem()
        caps = net.capacities.astype(np.float64)
        bad = caps.copy()
        bad[0] = np.inf
        pm = PathMatrix.from_paths(paths)
        with pytest.raises(contracts.ContractError, match="capacities"):
            StackedPathMatrix.from_scenarios([(pm, bad, None)])
        StackedPathMatrix.from_scenarios([(pm, caps, None)])  # sane input ok
