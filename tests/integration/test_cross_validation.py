"""Cross-validation: independent code paths must agree.

These tests pit different implementations of the same quantity against
each other — the strongest correctness signal available without the
original hardware.
"""

from __future__ import annotations

import math

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.isoperimetry.cuboids import best_cuboid
from repro.netsim.fairness import max_min_fair_rates
from repro.netsim.fluid import simulate_flows
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import dimension_ordered_route
from repro.netsim.schedule import RouteCache, TransferRound, simulate_rounds
from repro.netsim.traffic import bisection_pairing
from repro.topology.torus import Torus


class TestCutComputations:
    """Four independent ways to compute a partition bisection agree."""

    @pytest.mark.parametrize(
        "dims", [(2, 2, 1, 1), (4, 1, 1, 1), (3, 2, 1, 1)]
    )
    def test_four_way_agreement(self, dims):
        geo = PartitionGeometry(dims)
        torus = geo.network()
        # 1. Closed form 256 P / A1.
        formula = 256 * geo.num_midplanes // geo.longest_dim
        # 2. Perpendicular-cut rule on the node torus.
        perp = torus.bisection_width()
        # 3. Exhaustive cuboid optimization at half size.
        _, cuboid = best_cuboid(torus.dims, torus.num_vertices // 2)
        # 4. Explicit halfspace cut weight.
        k, _ = torus.best_perpendicular_bisection()
        explicit = torus.cut_weight(torus.halfspace(k))
        assert formula == perp == cuboid == explicit

    def test_networkx_agreement(self):
        import networkx as nx

        torus = PartitionGeometry((2, 1, 1, 1)).network()
        k, _ = torus.best_perpendicular_bisection()
        half = torus.halfspace(k)
        g = torus.to_networkx()
        assert nx.cut_size(g, half) == torus.bisection_width()


class TestContentionModels:
    """Fluid and bottleneck models agree on synchronized patterns."""

    @pytest.mark.parametrize("dims", [(8, 4, 2), (6, 4, 4)])
    def test_fluid_equals_bottleneck_for_pairing(self, dims):
        torus = Torus(dims)
        net = LinkNetwork(torus, link_bandwidth=2.0)
        pairs = bisection_pairing(torus)
        paths = [
            net.path_to_links(dimension_ordered_route(torus, s, d))
            for s, d in pairs
        ]
        vol = 3.0
        fluid = simulate_flows(net, paths, [vol] * len(paths))
        bottleneck = net.bottleneck_time(paths, [vol] * len(paths))
        assert fluid == pytest.approx(bottleneck)

    def test_schedule_round_equals_bottleneck(self):
        torus = Torus((8, 2))
        net = LinkNetwork(torus, link_bandwidth=2.0)
        cache = RouteCache(net, torus)
        pairs = bisection_pairing(torus)
        verts = list(torus.vertices())
        idx = {v: i for i, v in enumerate(verts)}
        rnd = TransferRound(
            tuple(idx[s] for s, _ in pairs),
            tuple(idx[d] for _, d in pairs),
            1.0,
        )
        total, _ = simulate_rounds(cache, [rnd])
        paths = [
            net.path_to_links(dimension_ordered_route(torus, s, d))
            for s, d in pairs
        ]
        assert total == pytest.approx(
            net.bottleneck_time(paths, [1.0] * len(paths))
        )

    def test_fairness_rate_times_volume_bounds_fluid(self):
        """For equal volumes the fluid makespan equals volume over the
        minimum max-min rate (flows finish in rate order)."""
        torus = Torus((6, 2))
        net = LinkNetwork(torus, link_bandwidth=1.0)
        pairs = bisection_pairing(torus)
        paths = [
            net.path_to_links(dimension_ordered_route(torus, s, d))
            for s, d in pairs
        ]
        rates = max_min_fair_rates(paths, net.capacities)
        fluid = simulate_flows(net, paths, [2.0] * len(paths))
        assert fluid <= 2.0 / rates.min() + 1e-9


class TestModelVsTheory:
    def test_pairing_rate_from_bisection_formula(self):
        """Per-flow pairing rate = 2 * bisection_GBps / N, the per-node
        bisection share the paper reasons with."""
        for dims in [(4, 1, 1, 1), (2, 2, 1, 1), (3, 2, 1, 1)]:
            geo = PartitionGeometry(dims)
            torus = geo.bgq_network()
            net = LinkNetwork(torus, link_bandwidth=2.0)
            paths = [
                net.path_to_links(dimension_ordered_route(torus, s, d))
                for s, d in bisection_pairing(torus)
            ]
            rates = max_min_fair_rates(paths, net.capacities)
            expected = (
                2.0 * geo.normalized_bisection_bandwidth * 2.0
                / geo.num_nodes
            )
            assert rates.min() == pytest.approx(expected), dims

    def test_contention_bound_is_a_true_lower_bound(self):
        """The Ballard-et-al contention floor never exceeds a simulated
        time for the same volume."""
        from repro.analysis.contention import caps_contention
        from repro.experiments.matmul import run_caps_on_geometry

        geo = PartitionGeometry((2, 1, 1, 1))
        ranks, n = 2401, 9408
        bound = caps_contention(geo, ranks, n).bound_seconds
        sim = run_caps_on_geometry(
            geo, num_ranks=ranks, matrix_dim=n, max_cores=4
        ).communication_time
        assert bound <= sim + 1e-9
