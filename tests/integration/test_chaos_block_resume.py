"""Chaos integration: a *block-dispatched* sweep killed mid-run resumes.

The stacked rewrite executes fault sweeps as scenario blocks, but the
checkpoint contract is unchanged: completed work is journaled at
**scenario granularity**, never block granularity.  A sweep killed
between blocks must resume from exactly the individually-completed
scenarios — even if the resumed run plans a *different* blocking — and
produce bit-identical output.

Two legs:

* a subprocess driver killed by ``REPRO_RESILIENCE_TEST_KILL`` while the
  serial-blocked path is between blocks (``os._exit``, like a SIGKILL),
  resumed against its ``--checkpoint`` journal;
* a direct ``_run_block_pool`` call whose worker is killed mid-block,
  forcing the ``BrokenProcessPool`` → pool-rebuild → re-planned-blocks
  recovery path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import sharedmem
from repro.resilience import TEST_KILL_EXIT_CODE


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Chaos or not, /dev/shm must end every test as it began.

    Guards the shared-memory transport's lifecycle discipline across
    the three fates a dispatch generation can meet: normal completion,
    a worker killed mid-block, and a BrokenProcessPool rebuild."""
    if not sharedmem.shm_supported():
        yield
        return
    before = sharedmem.active_segments()
    yield
    sharedmem.detach_segments()
    assert sharedmem.active_segments() == before

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: Scenario index the kill hook fires at.  With ``max_block_tasks=2``
#: the 7-task sweep plans blocks [0,1], [2,3], [4,5], [6]; index 3 dies
#: at the *start* of the second block, after the first block's two
#: scenarios were journaled individually.
KILL_AT = 3

#: The driver re-registers the fluid-sweep block runner with tiny
#: blocks so a single-CPU run still executes multiple blocks, then runs
#: the same ``fluid_fault_sweep`` the CLI ``faults --fluid-sweep``
#: command calls (1 healthy + 2*3 fault scenarios = 7 tasks).
DRIVER = textwrap.dedent(
    """
    import sys

    from repro.allocation.geometry import PartitionGeometry
    from repro.experiments.faultstudy import (
        _fluid_scenario,
        _fluid_scenario_block,
        fluid_fault_sweep,
    )
    from repro.parallel import register_block_runner

    register_block_runner(
        _fluid_scenario,
        _fluid_scenario_block,
        min_block_tasks=2,
        max_block_tasks=2,
    )
    ckpt = None if sys.argv[1] == "-" else sys.argv[1]
    rows = fluid_fault_sweep(
        PartitionGeometry((2, 2, 1, 1)),
        max_failures=2,
        trials=3,
        seed=5,
        jobs=1,
        checkpoint=ckpt,
    )
    for row in rows:
        print(row)
    """
).strip()


def _run_driver(script, args, cwd, extra_env=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_SRC)
    # The triple is about *block* dispatch: pin the vector knob on so
    # an inherited REPRO_VECTOR=0 cannot change the planned blocking.
    env["REPRO_VECTOR"] = "1"
    env.pop("REPRO_RESILIENCE_TEST_KILL", None)
    env.pop("REPRO_RESILIENCE_TEST_KILL_MARKER", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=280,
    )


@pytest.fixture(scope="module")
def block_triple(tmp_path_factory):
    """Run the clean / killed / resumed triple once for all asserts."""
    tmp = tmp_path_factory.mktemp("block_chaos")
    script = tmp / "driver.py"
    script.write_text(DRIVER + "\n")

    clean = _run_driver(script, ["-"], tmp)
    assert clean.returncode == 0, clean.stderr

    killed = _run_driver(
        script,
        ["ckpt.jsonl"],
        tmp,
        extra_env={
            "REPRO_RESILIENCE_TEST_KILL": str(KILL_AT),
            "REPRO_RESILIENCE_TEST_KILL_MARKER": str(tmp / "kill.marker"),
        },
    )
    ckpt_after_kill = (tmp / "ckpt.jsonl").read_text()
    resumed = _run_driver(script, ["ckpt.jsonl"], tmp)
    return tmp, clean, killed, ckpt_after_kill, resumed


class TestBlockKillAndResume:
    def test_kill_fires_between_blocks(self, block_triple):
        tmp, _, killed, _, _ = block_triple
        assert killed.returncode == TEST_KILL_EXIT_CODE
        assert (tmp / "kill.marker").read_text() == str(KILL_AT)

    def test_checkpoint_is_scenario_granular(self, block_triple):
        """The journal after the kill holds the first block's scenarios
        as *individual* task records — not one opaque block record, and
        nothing from the block the kill interrupted."""
        _, _, _, ckpt_after_kill, _ = block_triple
        records = [
            json.loads(line)
            for line in ckpt_after_kill.splitlines()
        ]
        assert records[0]["type"] == "header"
        task_records = [r for r in records if r["type"] == "task"]
        assert [r["index"] for r in task_records] == [0, 1]
        # Scenario granularity: one record per scenario, each with its
        # own content-hash key.
        keys = {r["key"] for r in task_records}
        assert len(keys) == 2

    def test_resumed_output_bit_identical_to_clean_run(
        self, block_triple
    ):
        _, clean, _, _, resumed = block_triple
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout

    def test_resumed_run_completed_the_journal(self, block_triple):
        tmp, _, _, _, resumed = block_triple
        assert resumed.returncode == 0
        records = [
            json.loads(line)
            for line in (tmp / "ckpt.jsonl").read_text().splitlines()
            if json.loads(line)["type"] == "task"
        ]
        # 0 and 1 from the killed run; the rest appended by the resume,
        # re-planned into fresh blocks.
        assert sorted(r["index"] for r in records) == list(range(7))
        assert [r["index"] for r in records][:2] == [0, 1]


# ----------------------------------------------------------------------
# Pool path: a worker killed mid-block breaks the pool; the sweep must
# rebuild it and re-plan blocks over the remaining scenarios.


def _square(x: int) -> int:
    return x * x


def _square_block(xs) -> list[int]:
    return [_square(x) for x in xs]


class TestBlockPoolWorkerDeath:
    def test_broken_pool_rebuilds_and_replans(
        self, tmp_path, monkeypatch
    ):
        from repro.parallel import BlockRunner
        from repro.resilience import (
            ResiliencePolicy,
            _PENDING,
            _run_block_pool,
            _SweepState,
        )

        tasks = list(range(10))
        state = _SweepState(
            fn=_square,
            tasks=tasks,
            results=[_PENDING] * len(tasks),
            policy=ResiliencePolicy(),
            ckpt=None,
            keys=None,
        )
        runner = BlockRunner(
            block_fn=_square_block, min_block_tasks=2, max_block_tasks=2
        )
        marker = tmp_path / "kill.marker"
        monkeypatch.setenv("REPRO_RESILIENCE_TEST_KILL", "4")
        monkeypatch.setenv(
            "REPRO_RESILIENCE_TEST_KILL_MARKER", str(marker)
        )
        with pytest.warns(RuntimeWarning, match="rebuilding worker pool"):
            _run_block_pool(state, workers=1, runner=runner)
        assert state.results == [x * x for x in tasks]
        assert state.pool_rebuilds >= 1
        assert marker.exists()


# ----------------------------------------------------------------------
# Shared-memory transport under chaos: segments must be reclaimed on
# every exit path — normal completion, a worker killed mid-block (the
# BrokenProcessPool rebuild), and the final degraded-serial fallback.
# The autouse ``no_shm_leaks`` fixture asserts the invariant for every
# test in this module; the tests below drive the transport through the
# specific fates.


def _array_sum(task):
    _i, arr = task
    return float(arr.sum())


def _array_sum_block(tasks):
    return [_array_sum(t) for t in tasks]


def _shm_state_and_runner():
    import numpy as np

    from repro.parallel import BlockRunner
    from repro.resilience import ResiliencePolicy, _PENDING, _SweepState

    # Each task carries a 160 KB plane, well past MIN_SHARED_BYTES, so
    # every dispatched chunk genuinely creates shared segments.
    tasks = [(i, np.full(20_000, float(i))) for i in range(10)]
    state = _SweepState(
        fn=_array_sum,
        tasks=tasks,
        results=[_PENDING] * len(tasks),
        policy=ResiliencePolicy(),
        ckpt=None,
        keys=None,
    )
    runner = BlockRunner(
        block_fn=_array_sum_block, min_block_tasks=2, max_block_tasks=2
    )
    expected = [float(arr.sum()) for _i, arr in tasks]
    return state, runner, expected


@pytest.mark.skipif(
    not sharedmem.shm_supported(),
    reason="multiprocessing.shared_memory unusable on this platform",
)
class TestShmChaosCleanup:
    def test_normal_completion_leaves_no_segments(self):
        from repro.resilience import _run_block_pool

        state, runner, expected = _shm_state_and_runner()
        _run_block_pool(state, workers=1, runner=runner, transport="shm")
        assert state.results == expected
        assert sharedmem.active_segments() == []

    def test_worker_kill_midblock_leaves_no_segments(
        self, tmp_path, monkeypatch
    ):
        """A killed worker breaks the pool mid-generation: the rebuild
        must unlink that generation's segments before re-planning."""
        from repro.resilience import _run_block_pool

        state, runner, expected = _shm_state_and_runner()
        marker = tmp_path / "kill.marker"
        monkeypatch.setenv("REPRO_RESILIENCE_TEST_KILL", "4")
        monkeypatch.setenv(
            "REPRO_RESILIENCE_TEST_KILL_MARKER", str(marker)
        )
        with pytest.warns(RuntimeWarning, match="rebuilding worker pool"):
            _run_block_pool(
                state, workers=1, runner=runner, transport="shm"
            )
        assert state.results == expected
        assert state.pool_rebuilds >= 1
        assert marker.exists()
        assert sharedmem.active_segments() == []

    def test_degraded_serial_fallback_leaves_no_segments(
        self, tmp_path, monkeypatch
    ):
        """Exhausting pool rebuilds degrades to serial blocks; the dead
        generations' segments must all be gone by then."""
        from repro.resilience import ResiliencePolicy, _run_block_pool

        state, runner, expected = _shm_state_and_runner()
        state.policy = ResiliencePolicy(max_pool_rebuilds=0)
        marker = tmp_path / "kill.marker"
        monkeypatch.setenv("REPRO_RESILIENCE_TEST_KILL", "4")
        monkeypatch.setenv(
            "REPRO_RESILIENCE_TEST_KILL_MARKER", str(marker)
        )
        with pytest.warns(RuntimeWarning, match="degrading to"):
            _run_block_pool(
                state, workers=1, runner=runner, transport="shm"
            )
        assert state.results == expected
        assert sharedmem.active_segments() == []
