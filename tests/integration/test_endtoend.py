"""Integration tests: whole-pipeline flows across packages."""

from __future__ import annotations

import math

import pytest

import repro
from repro.allocation import (
    PartitionGeometry,
    SchedulingAdvisor,
    best_geometry_for_machine,
    juqueen_policy,
)
from repro.allocation.advisor import JobRequest
from repro.experiments.pairing import PairingParameters, run_pairing
from repro.isoperimetry import (
    best_cuboid,
    reduced_torus_bound,
    torus_isoperimetric_bound,
)
from repro.machines import JUQUEEN, MIRA


class TestTheoryToAllocationPipeline:
    """Theorem 3.1 -> cuboid optimizer -> geometry ranking agree."""

    @pytest.mark.parametrize("size", [4, 8, 16, 24])
    def test_bandwidth_consistent_with_isoperimetry(self, size):
        best = best_geometry_for_machine(MIRA, size)
        node_dims = best.node_dims
        half = best.num_nodes // 2
        # Exact cuboid bisection of the partition torus equals the
        # reported bandwidth.
        _, per = best_cuboid(node_dims, half)
        assert per == best.normalized_bisection_bandwidth

    def test_reduced_bound_matches_machine_bisection(self):
        for dims in [(4, 1, 1, 1), (2, 2, 1, 1), (3, 2, 2, 2)]:
            geo = PartitionGeometry(dims)
            bound = reduced_torus_bound(
                geo.node_dims, geo.num_nodes // 2
            ).value
            assert bound == pytest.approx(
                geo.normalized_bisection_bandwidth
            )

    def test_theorem_bound_never_exceeds_bisection(self):
        geo = PartitionGeometry((2, 2, 1, 1))
        bound = reduced_torus_bound(geo.node_dims, geo.num_nodes // 2)
        assert bound.value <= geo.normalized_bisection_bandwidth + 1e-9


class TestAllocationToSimulationPipeline:
    """Geometry ranking predicts simulated contention outcomes."""

    def test_bandwidth_ratio_predicts_pairing_ratio(self):
        params = PairingParameters(rounds=2)
        for size in (4, 8):
            worse = juqueen_policy().worst_geometry(size)
            better = juqueen_policy().best_geometry(size)
            bw_ratio = (
                better.normalized_bisection_bandwidth
                / worse.normalized_bisection_bandwidth
            )
            t_worse = run_pairing(worse, params).time_seconds
            t_better = run_pairing(better, params).time_seconds
            assert t_worse / t_better == pytest.approx(bw_ratio, rel=0.01)

    def test_advisor_consistent_with_simulation(self):
        """The advisor's runtime model ranks geometries in the same
        order the simulator does."""
        advisor = SchedulingAdvisor(juqueen_policy())
        job = JobRequest(
            num_midplanes=4, optimal_runtime=100.0, contention_fraction=1.0
        )
        worse = PartitionGeometry((4, 1, 1, 1))
        better = PartitionGeometry((2, 2, 1, 1))
        best_bw = better.normalized_bisection_bandwidth
        model_ratio = job.runtime_on(worse, best_bw) / job.runtime_on(
            better, best_bw
        )
        params = PairingParameters(rounds=2)
        sim_ratio = (
            run_pairing(worse, params).time_seconds
            / run_pairing(better, params).time_seconds
        )
        assert model_ratio == pytest.approx(sim_ratio, rel=0.01)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet(self):
        geo = repro.PartitionGeometry((4, 1, 1, 1))
        assert geo.normalized_bisection_bandwidth == 256
        best = repro.best_geometry_for_machine(repro.MIRA, 4)
        assert best.dims == (2, 2, 1, 1)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.allocation
        import repro.analysis
        import repro.experiments
        import repro.isoperimetry
        import repro.kernels
        import repro.machines
        import repro.netsim
        import repro.topology

        for mod in (
            repro.topology, repro.isoperimetry, repro.machines,
            repro.allocation, repro.netsim, repro.kernels,
            repro.experiments, repro.analysis,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), (mod.__name__, name)


class TestPaperHeadlines:
    """The abstract's quantitative claims, end to end."""

    def test_up_to_2x_for_contention_bound_workloads(self):
        """'These can yield up to a x2 speedup for contention-bound
        workloads' — realized by the pairing simulation."""
        params = PairingParameters(rounds=2)
        worse = run_pairing(PartitionGeometry((4, 1, 1, 1)), params)
        better = run_pairing(PartitionGeometry((2, 2, 1, 1)), params)
        assert worse.time_seconds / better.time_seconds == pytest.approx(
            2.0
        )

    def test_juqueen_inconsistent_performance_risk(self):
        """Size-only requests on JUQUEEN can land on geometries 2x apart."""
        pol = juqueen_policy()
        risky = [s for s in pol.supported_sizes()
                 if pol.bandwidth_spread(s) > 1.0]
        assert risky == [4, 6, 8, 12, 16, 24]
