"""Chaos integration: a sweep killed mid-run resumes bit-identically.

Drives the real CLI in subprocesses: a ``faults`` sweep is hard-killed
mid-task via the deterministic ``REPRO_RESILIENCE_TEST_KILL`` hook
(``os._exit`` — no cleanup, no atexit, exactly like a SIGKILL), then
re-run against its ``--checkpoint`` journal.  The resumed run must skip
the completed tasks, produce stdout bit-identical to an uninterrupted
run, and surface the resume in the observability trace.  This is the
same scenario the chaos-resilience CI leg exercises.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.resilience import TEST_KILL_EXIT_CODE

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: A small but multi-row faults grid: 1 + 2*3 = 7 sweep tasks.
FAULTS_ARGS = [
    "faults", "--machine", "mira", "--size", "16",
    "--max-failures", "2", "--trials", "3", "--seed", "0",
]

#: Task index the kill hook fires at (must be < number of tasks).
KILL_AT = 3


def _run_cli(args, cwd, extra_env=None):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO_SRC)
    env.pop("REPRO_RESILIENCE_TEST_KILL", None)
    env.pop("REPRO_RESILIENCE_TEST_KILL_MARKER", None)
    env.pop("REPRO_TRACE", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=280,
    )


@pytest.fixture(scope="module")
def killed_and_resumed(tmp_path_factory):
    """Run the clean / killed / resumed triple once for all asserts."""
    tmp = tmp_path_factory.mktemp("chaos")
    clean = _run_cli(FAULTS_ARGS, tmp)
    assert clean.returncode == 0, clean.stderr

    killed = _run_cli(
        FAULTS_ARGS + ["--checkpoint", "ckpt.jsonl"],
        tmp,
        extra_env={
            "REPRO_RESILIENCE_TEST_KILL": str(KILL_AT),
            "REPRO_RESILIENCE_TEST_KILL_MARKER": str(tmp / "kill.marker"),
        },
    )
    resumed = _run_cli(
        FAULTS_ARGS
        + ["--checkpoint", "ckpt.jsonl", "--trace", "trace.jsonl"],
        tmp,
    )
    return tmp, clean, killed, resumed


class TestKillAndResume:
    def test_kill_hook_fires_with_its_exit_code(self, killed_and_resumed):
        tmp, _, killed, _ = killed_and_resumed
        assert killed.returncode == TEST_KILL_EXIT_CODE
        assert (tmp / "kill.marker").exists()

    def test_checkpoint_holds_the_completed_prefix(
        self, killed_and_resumed
    ):
        tmp, _, _, _ = killed_and_resumed
        lines = (tmp / "ckpt.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "header"
        task_records = [r for r in records if r["type"] == "task"]
        # Tasks 0..KILL_AT-1 completed before the kill; the resumed run
        # appended the rest to the same journal.
        indices = [r["index"] for r in task_records]
        assert indices[:KILL_AT] == list(range(KILL_AT))
        assert sorted(indices) == list(range(7))

    def test_resumed_output_bit_identical_to_clean_run(
        self, killed_and_resumed
    ):
        _, clean, _, resumed = killed_and_resumed
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout

    def test_trace_shows_resumed_tasks(self, killed_and_resumed):
        tmp, _, _, resumed = killed_and_resumed
        assert resumed.returncode == 0
        summary = _run_cli(["trace", "summarize", "trace.jsonl"], tmp)
        assert summary.returncode == 0, summary.stderr
        line = next(
            ln for ln in summary.stdout.splitlines()
            if "resilience.resumed_tasks" in ln
        )
        assert line.split()[-1] == str(KILL_AT)
