"""Repository tooling sanity checks.

Keeps the source tree importable at the bytecode level: every module
under ``src/`` must byte-compile (the ``python -m compileall src``
sanity step, run in-process so it is part of tier-1).

Also keeps the tree *lint-clean*: ``repro lint src/`` (the
reprolint static-analysis pass, :mod:`repro.staticcheck`) must report
zero unsuppressed findings, every suppression must carry a reason, and
the ``REPRO_*`` knob registry must stay in sync with the docs.  Running
the self-lint here makes a new violation fail tier-1 locally, not just
the CI lint leg.
"""

from __future__ import annotations

import compileall
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
ROOT = SRC.parent


def test_src_tree_byte_compiles():
    assert SRC.is_dir()
    ok = compileall.compile_dir(str(SRC), quiet=2, force=False, workers=1)
    assert ok, "a module under src/ failed to byte-compile"


def test_cli_entry_point_resolves():
    """The console script named in pyproject actually imports."""
    from repro.cli import main

    assert callable(main)


def test_src_tree_is_lint_clean():
    """`repro lint src/` reports zero unsuppressed findings."""
    from repro import staticcheck

    result = staticcheck.analyze_paths([SRC], root=ROOT)
    assert result.files_scanned > 50
    report = staticcheck.render_text(result)
    assert result.clean, f"src/ has lint findings:\n{report}"


def test_every_suppression_carries_a_reason():
    """In-tree `# repro: allow-*` markers all justify themselves."""
    from repro import staticcheck

    result = staticcheck.analyze_paths([SRC], root=ROOT)
    assert result.suppressed, "expected the known in-tree suppressions"
    for finding, reason in result.suppressed:
        assert reason, f"{finding.path}:{finding.line} has a bare marker"


def test_knob_registry_matches_docs():
    """Every repro.env knob is documented, and vice versa."""
    from repro import staticcheck

    docs = staticcheck.find_docs_dir(ROOT)
    assert docs is not None
    drift = staticcheck.check_knob_docs(docs)
    assert drift == [], "\n".join(f.message for f in drift)
