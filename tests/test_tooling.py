"""Repository tooling sanity checks.

Keeps the source tree importable at the bytecode level: every module
under ``src/`` must byte-compile (the ``python -m compileall src``
sanity step, run in-process so it is part of tier-1).
"""

from __future__ import annotations

import compileall
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"


def test_src_tree_byte_compiles():
    assert SRC.is_dir()
    ok = compileall.compile_dir(str(SRC), quiet=2, force=False, workers=1)
    assert ok, "a module under src/ failed to byte-compile"


def test_cli_entry_point_resolves():
    """The console script named in pyproject actually imports."""
    from repro.cli import main

    assert callable(main)
