"""Unit tests for the deterministic sweep executor."""

from __future__ import annotations

import os

import pytest

from repro.parallel import (
    BlockRunner,
    _block_size,
    block_runner_for,
    register_block_runner,
    resolve_jobs,
    split_seeds,
    sweep_map,
    unregister_block_runner,
)


def square(x):
    return x * x


def failing(x):
    if x == 3:
        raise ValueError("task 3 exploded")
    return x


def seeded_sum(task):
    import numpy as np

    n, seed = task
    rng = np.random.default_rng(seed)
    return float(rng.random(n).sum())


class TestSweepMap:
    def test_serial_matches_plain_map(self):
        items = list(range(17))
        assert sweep_map(square, items, jobs=1) == [x * x for x in items]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(23))
        serial = sweep_map(square, items, jobs=1)
        parallel = sweep_map(square, items, jobs=4)
        assert parallel == serial

    def test_parallel_seeded_results_bit_identical(self):
        tasks = [(100, s) for s in split_seeds(42, 12)]
        assert sweep_map(seeded_sum, tasks, jobs=4) == sweep_map(
            seeded_sum, tasks, jobs=1
        )

    def test_empty_grid(self):
        assert sweep_map(square, [], jobs=4) == []

    def test_single_task_stays_serial(self):
        assert sweep_map(square, [7], jobs=8) == [49]

    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="task 3"):
            sweep_map(failing, range(5), jobs=1)

    def test_task_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="task 3"):
            sweep_map(failing, range(5), jobs=2)

    def test_explicit_chunksize(self):
        items = list(range(10))
        assert sweep_map(square, items, jobs=2, chunksize=3) == [
            x * x for x in items
        ]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            sweep_map(square, [1, 2], jobs=-2)

    def test_rejects_bad_chunksize(self):
        with pytest.raises(ValueError):
            sweep_map(square, [1, 2], jobs=2, chunksize=0)

    def test_consumes_generators_eagerly(self):
        gen = (x for x in range(6))
        assert sweep_map(square, gen, jobs=1) == [x * x for x in range(6)]


class TestCpuCap:
    """Regression: a jobs>1 sweep on a 1-CPU host must not spawn a pool
    (the pool was measured ~2x slower than serial there)."""

    def test_single_cpu_runs_serially(self, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "ProcessPoolExecutor created despite cpu_count=1"
            )

        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        items = list(range(9))
        assert sweep_map(square, items, jobs=4) == [x * x for x in items]

    def test_workers_capped_at_cpu_count(self, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
        seen: dict[str, int] = {}

        import concurrent.futures

        real_pool = concurrent.futures.ProcessPoolExecutor

        def _spy_pool(max_workers=None, **kwargs):
            seen["max_workers"] = max_workers
            return real_pool(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _spy_pool
        )
        # Above the small-sweep cutoff, else no pool is created at all.
        items = list(range(40))
        assert sweep_map(square, items, jobs=8) == [x * x for x in items]
        assert seen["max_workers"] == 2

    def test_single_cpu_fallback_emits_sweep_metrics(self, monkeypatch):
        """The serial fallback keeps the observability contract: the
        parallel.sweep span and task counters appear either way."""
        import repro.parallel as parallel
        from repro import observability

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        s = observability.OBS
        saved = (
            s.enabled, s.events, s.dropped_events, s.stack,
            s.span_totals, s.counters, s.gauges, s.origin,
        )
        s.enabled = False
        s.reset()
        try:
            observability.enable()
            sweep_map(square, list(range(5)), jobs=2)
            assert s.counters["parallel.tasks"] == 5.0
            assert s.counters["parallel.sweeps"] == 1.0
            assert "parallel.sweep" in s.span_totals
            assert s.gauges["parallel.workers"] == 1.0
        finally:
            (
                s.enabled, s.events, s.dropped_events, s.stack,
                s.span_totals, s.counters, s.gauges, s.origin,
            ) = saved

    def test_pool_creation_failure_emits_sweep_metrics(self, monkeypatch):
        import concurrent.futures

        import repro.parallel as parallel
        from repro import observability

        def _broken_pool(*args, **kwargs):
            raise OSError("no process support")

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 4)
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _broken_pool
        )
        s = observability.OBS
        saved = (
            s.enabled, s.events, s.dropped_events, s.stack,
            s.span_totals, s.counters, s.gauges, s.origin,
        )
        s.enabled = False
        s.reset()
        try:
            observability.enable()
            items = list(range(40))
            with pytest.warns(
                RuntimeWarning, match="cannot create a process pool"
            ):
                result = sweep_map(square, items, jobs=4)
            assert result == [x * x for x in items]
            assert s.counters["parallel.tasks"] == 40.0
            assert "parallel.sweep" in s.span_totals
        finally:
            (
                s.enabled, s.events, s.dropped_events, s.stack,
                s.span_totals, s.counters, s.gauges, s.origin,
            ) = saved


#: Blocks executed by ``tracked_block`` (cleared by the fixture).
_BLOCK_CALLS: list[int] = []


def tracked_square(x):
    return x * x


def tracked_block(xs):
    _BLOCK_CALLS.append(len(xs))
    return [tracked_square(x) for x in xs]


def short_block(xs):
    """A broken block form: drops the last result."""
    return [x * x for x in xs][:-1]


@pytest.fixture
def tracked_runner():
    _BLOCK_CALLS.clear()
    register_block_runner(tracked_square, tracked_block)
    yield
    unregister_block_runner(tracked_square)


class TestBlockDispatch:
    """Sweeps whose task function has a registered block form."""

    def test_register_and_unregister(self, tracked_runner):
        runner = block_runner_for(tracked_square)
        assert runner is not None
        assert runner.block_fn is tracked_block
        unregister_block_runner(tracked_square)
        assert block_runner_for(tracked_square) is None

    def test_unregistered_fn_has_no_runner(self):
        assert block_runner_for(square) is None

    def test_vector_knob_disables_dispatch(
        self, tracked_runner, monkeypatch
    ):
        """``REPRO_VECTOR=0`` must force the scalar per-task path —
        the single escape hatch the differential suite relies on."""
        monkeypatch.setenv("REPRO_VECTOR", "0")
        assert block_runner_for(tracked_square) is None
        items = list(range(8))
        assert sweep_map(tracked_square, items, jobs=1) == [
            x * x for x in items
        ]
        assert _BLOCK_CALLS == []

    def test_sweep_routes_through_block_fn(self, tracked_runner):
        items = list(range(8))
        assert sweep_map(tracked_square, items, jobs=1) == [
            x * x for x in items
        ]
        # Small sweep, serial dispatch: one maximal block.
        assert _BLOCK_CALLS == [8]

    def test_below_min_block_tasks_stays_scalar(self, tracked_runner):
        assert sweep_map(tracked_square, [3], jobs=1) == [9]
        assert _BLOCK_CALLS == []

    def test_block_result_count_validated(self):
        register_block_runner(tracked_square, short_block)
        try:
            with pytest.raises(RuntimeError, match="3 results"):
                sweep_map(tracked_square, [1, 2, 3, 4], jobs=1)
        finally:
            unregister_block_runner(tracked_square)

    def test_rejects_bad_block_bounds(self):
        with pytest.raises(ValueError, match="max_block_tasks"):
            register_block_runner(
                tracked_square, tracked_block,
                min_block_tasks=8, max_block_tasks=4,
            )
        with pytest.raises(ValueError):
            register_block_runner(
                tracked_square, tracked_block, min_block_tasks=0
            )

    def test_small_sweep_never_spawns_a_pool(
        self, tracked_runner, monkeypatch
    ):
        """Crossover regression: block-family sweeps at or below the
        serial cutoff must not pay pool startup, whatever ``jobs``
        says (the designsearch seam where the pool measured slower
        than serial)."""
        import concurrent.futures

        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "ProcessPoolExecutor created for a small blocked sweep"
            )

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        items = list(range(parallel._SMALL_SWEEP_TASKS))
        assert sweep_map(tracked_square, items, jobs=8) == [
            x * x for x in items
        ]
        assert sum(_BLOCK_CALLS) == len(items)

    def test_large_sweep_pools_in_blocks(self, tracked_runner, monkeypatch):
        """Above the cutoff, the pool moves whole blocks, not tasks.

        The adaptive planner's modeled pool overhead is zeroed so the
        projected-cost comparison always picks the pool for these
        trivial tasks."""
        import concurrent.futures

        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
        monkeypatch.setattr(parallel, "_POOL_SPAWN_S", 0.0)
        monkeypatch.setattr(parallel, "_DISPATCH_S", 0.0)
        seen: dict[str, int] = {}
        real_pool = concurrent.futures.ProcessPoolExecutor

        def _spy_pool(max_workers=None, **kwargs):
            seen["max_workers"] = max_workers
            return real_pool(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _spy_pool
        )
        items = list(range(40))
        assert sweep_map(tracked_square, items, jobs=4) == [
            x * x for x in items
        ]
        assert seen["max_workers"] == 2

    def test_block_size_serial_is_maximal(self):
        runner = BlockRunner(block_fn=tracked_block)
        assert _block_size(40, 1, runner) == 40

    def test_block_size_pool_targets_four_per_worker(self):
        runner = BlockRunner(block_fn=tracked_block)
        assert _block_size(100, 4, runner) == 7  # ceil(100 / 16)

    def test_block_size_capped_by_runner(self):
        runner = BlockRunner(block_fn=tracked_block, max_block_tasks=16)
        assert _block_size(500, 1, runner) == 16
        assert _block_size(500, 2, runner) == 16


class TestPlainPathCrossover:
    """Satellite regression: the small-sweep serial cutoff applies to
    the plain per-task path, not only block-dispatched families."""

    def test_small_plain_sweep_never_spawns_a_pool(self, monkeypatch):
        import concurrent.futures

        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "ProcessPoolExecutor created for a small plain sweep"
            )

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        items = list(range(parallel._SMALL_SWEEP_TASKS))
        assert sweep_map(square, items, jobs=8) == [x * x for x in items]

    def test_cutoff_boundary_is_inclusive(self, monkeypatch):
        import concurrent.futures

        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        created = []
        real_pool = concurrent.futures.ProcessPoolExecutor

        def _spy_pool(*args, **kwargs):
            created.append(kwargs.get("max_workers"))
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _spy_pool
        )
        n = parallel._SMALL_SWEEP_TASKS
        sweep_map(square, list(range(n)), jobs=8)
        assert created == []  # exactly at the cutoff: serial
        sweep_map(square, list(range(n + 1)), jobs=8)
        assert len(created) == 1  # one past the cutoff: pooled


class TestAdaptiveScheduling:
    """The probe-and-plan crossover heuristic on block sweeps."""

    def test_plan_declines_pool_for_cheap_tasks(self):
        from repro.parallel import BlockRunner, _plan_adaptive

        runner = BlockRunner(block_fn=tracked_block)
        # 64 one-microsecond tasks: spawning any worker costs more
        # than the whole remaining sweep.
        assert _plan_adaptive(64, 4, runner, per_task_s=1e-6) is None

    def test_plan_accepts_pool_for_expensive_tasks(self):
        from repro.parallel import BlockRunner, _plan_adaptive

        runner = BlockRunner(block_fn=tracked_block)
        plan = _plan_adaptive(64, 4, runner, per_task_s=0.1)
        assert plan is not None
        size, workers = plan
        assert workers == 4
        assert 1 <= size <= 64

    def test_plan_caps_workers_at_block_count(self):
        """Satellite regression: more pool processes than planned
        blocks is pure spawn cost — the plan must shrink the pool."""
        from repro.parallel import BlockRunner, _plan_adaptive

        runner = BlockRunner(block_fn=tracked_block)
        # 4 expensive tasks, 8 requested workers: blocks of 1 leave
        # only 4 blocks to feed, so only 4 workers may spawn.
        plan = _plan_adaptive(4, 8, runner, per_task_s=1.0)
        assert plan is not None
        _size, workers = plan
        assert workers == 4

    def test_plan_respects_runner_block_cap(self):
        from repro.parallel import BlockRunner, _plan_adaptive

        runner = BlockRunner(block_fn=tracked_block, max_block_tasks=3)
        plan = _plan_adaptive(64, 2, runner, per_task_s=0.1)
        assert plan is not None
        size, _workers = plan
        assert size <= 3

    def test_adaptive_serial_fallback_is_correct(
        self, tracked_runner, monkeypatch
    ):
        """When the plan declines the pool, the sweep must finish
        serially with correct, ordered results — and never fork."""
        import concurrent.futures

        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        # Model an impossibly expensive pool so the plan says serial.
        monkeypatch.setattr(parallel, "_POOL_SPAWN_S", 1e9)

        def _no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "ProcessPoolExecutor created despite adaptive serial plan"
            )

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        items = list(range(40))
        assert sweep_map(tracked_square, items, jobs=8) == [
            x * x for x in items
        ]
        assert sum(_BLOCK_CALLS) == len(items)

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_pooled_block_sweep_bit_identical(
        self, tracked_runner, monkeypatch, transport
    ):
        """Both transports return exactly the serial results; the shm
        leg must leave no /dev/shm segments behind."""
        from repro import sharedmem

        import repro.parallel as parallel

        if transport == "shm" and not sharedmem.shm_supported():
            pytest.skip("shared memory unusable here")
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
        monkeypatch.setattr(parallel, "_POOL_SPAWN_S", 0.0)
        monkeypatch.setattr(parallel, "_DISPATCH_S", 0.0)
        items = list(range(40))
        got = sweep_map(
            tracked_square, items, jobs=2, transport=transport
        )
        assert got == [x * x for x in items]
        assert sharedmem.active_segments() == []

    def test_rejects_unknown_transport(self, tracked_runner, monkeypatch):
        import repro.parallel as parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
        monkeypatch.setattr(parallel, "_POOL_SPAWN_S", 0.0)
        monkeypatch.setattr(parallel, "_DISPATCH_S", 0.0)
        with pytest.raises(ValueError, match="transport"):
            sweep_map(
                tracked_square, list(range(40)), jobs=2,
                transport="smoke-signals",
            )


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_auto_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(0) == 5

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            assert resolve_jobs(0) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("raw", ["-2", "0", "", "abc"])
    def test_invalid_env_warns_naming_value(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JOBS", raw)
        with pytest.warns(RuntimeWarning) as record:
            assert resolve_jobs(None) == (os.cpu_count() or 1)
        message = str(record[0].message)
        assert "REPRO_JOBS" in message
        assert repr(raw) in message

    def test_valid_env_does_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_jobs(None) == 2
        assert not [
            w for w in recwarn if issubclass(w.category, RuntimeWarning)
        ]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestSplitSeeds:
    def test_deterministic(self):
        assert split_seeds(0, 8) == split_seeds(0, 8)
        assert split_seeds(123, 5) == split_seeds(123, 5)

    def test_distinct_children(self):
        assert len(set(split_seeds(7, 200))) == 200

    def test_prefix_stability(self):
        # Spawning is sequential: the first k children do not depend on n.
        assert split_seeds(9, 10)[:4] == split_seeds(9, 4)

    def test_different_parents_diverge(self):
        assert split_seeds(0, 4) != split_seeds(1, 4)

    def test_zero_children(self):
        assert split_seeds(5, 0) == ()

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            split_seeds(-1, 3)
