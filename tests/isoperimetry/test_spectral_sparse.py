"""Tests for the sparse (large-graph) spectral code path."""

from __future__ import annotations

import math

import pytest

from repro.isoperimetry.spectral import (
    DENSE_LIMIT,
    algebraic_connectivity,
    fiedler_cut,
)
from repro.topology.torus import Torus


@pytest.fixture(scope="module")
def big_torus():
    # 27 x 26 = 702 vertices > DENSE_LIMIT: exercises the Lanczos path.
    t = Torus((27, 26))
    assert t.num_vertices > DENSE_LIMIT
    return t


class TestSparsePath:
    def test_connectivity_matches_ring_product_formula(self, big_torus):
        lam = algebraic_connectivity(big_torus)
        expected = 2 - 2 * math.cos(2 * math.pi / 27)
        assert lam == pytest.approx(expected, rel=1e-4)

    def test_sparse_agrees_with_dense_on_boundary(self):
        """Just below/above the threshold the two paths agree."""
        small = Torus((24, 25))  # 600 = dense
        lam_dense = algebraic_connectivity(small)
        expected = 2 - 2 * math.cos(2 * math.pi / 25)
        assert lam_dense == pytest.approx(expected, rel=1e-6)

    def test_fiedler_cut_on_large_graph(self, big_torus):
        witness, cond = fiedler_cut(big_torus)
        assert 0 < len(witness) < big_torus.num_vertices
        # True bisection conductance: cut 2*26 / vol (27*26*4/2)... check
        # achieved is within the Cheeger window.
        assert cond > 0
