"""Unit tests for spectral (Cheeger) expansion estimates."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.isoperimetry.spectral import (
    algebraic_connectivity,
    cheeger_bounds,
    fiedler_cut,
    laplacian_matrix,
    spectral_expansion_estimate,
)
from repro.topology.clique_product import CliqueProduct
from repro.topology.torus import Torus


class TestLaplacian:
    def test_rows_sum_to_zero(self):
        L, _ = laplacian_matrix(Torus((4, 3)))
        assert np.allclose(L.sum(axis=1), 0.0)

    def test_diagonal_is_degree(self):
        t = Torus((4, 3))
        L, verts = laplacian_matrix(t)
        for i, v in enumerate(verts):
            assert L[i, i] == t.degree(v)

    def test_normalized_diagonal_is_one(self):
        L, _ = laplacian_matrix(Torus((4, 3)), normalized=True)
        assert np.allclose(np.diag(L), 1.0)

    def test_symmetric(self):
        L, _ = laplacian_matrix(CliqueProduct((3, 2), weights=(1, 3)))
        assert np.allclose(L, L.T)


class TestAlgebraicConnectivity:
    def test_ring_formula(self):
        # lambda_2 of C_n is 2 - 2 cos(2 pi / n).
        n = 8
        lam = algebraic_connectivity(Torus((n,)))
        assert lam == pytest.approx(2 - 2 * math.cos(2 * math.pi / n))

    def test_positive_for_connected(self):
        assert algebraic_connectivity(Torus((4, 4))) > 0

    def test_torus_product_additivity(self):
        # lambda_2 of a Cartesian product is the min of the factors'.
        lam_prod = algebraic_connectivity(Torus((8, 4)))
        lam_8 = algebraic_connectivity(Torus((8,)))
        assert lam_prod == pytest.approx(lam_8)


class TestCheeger:
    def test_bounds_sandwich_true_conductance(self):
        t = Torus((4, 4))
        lower, upper = cheeger_bounds(t)
        # True conductance of the 4x4 torus bisection: 8 / 32 = 0.25.
        true = 0.25
        assert lower <= true + 1e-9
        assert true <= upper + 1e-9

    def test_fiedler_cut_within_cheeger(self):
        t = Torus((6, 4))
        lower, upper = cheeger_bounds(t)
        _, achieved = fiedler_cut(t)
        assert lower - 1e-9 <= achieved <= upper + 1e-9

    def test_fiedler_cut_is_real_cut(self):
        t = Torus((6, 4))
        witness, cond = fiedler_cut(t)
        cut = t.cut_weight(witness)
        vol = sum(t.weighted_degree(v) for v in witness)
        total = 2 * t.total_capacity
        assert cond == pytest.approx(cut / min(vol, total - vol))

    def test_fiedler_needs_two_vertices(self):
        with pytest.raises(ValueError):
            fiedler_cut(Torus((1,)))

    def test_estimate_structure(self):
        est = spectral_expansion_estimate(Torus((4, 4)))
        assert est["lower"] <= est["upper"] + 1e-9
        assert est["upper"] <= est["cheeger_upper"] + 1e-9
        assert isinstance(est["witness"], set)

    def test_sweep_finds_good_torus_cut(self):
        """On the 8x4 torus the Fiedler sweep should find (close to) the
        perpendicular bisection quality."""
        t = Torus((8, 4))
        _, achieved = fiedler_cut(t)
        # Optimal conductance: cut 8 / vol 64 = 0.125.
        assert achieved <= 0.2
