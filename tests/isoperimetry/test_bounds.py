"""Unit tests for Theorem 2.1 / Theorem 3.1 bounds."""

from __future__ import annotations

import math

import pytest

from repro.isoperimetry.bounds import (
    BoundResult,
    bollobas_leader_bound,
    bound_is_attained,
    reduced_torus_bound,
    torus_isoperimetric_bound,
)
from repro.isoperimetry.cuboids import best_cuboid, enumerate_cuboid_shapes


class TestBollobasLeader:
    def test_bisection_of_square_torus(self):
        # [4]^2, t=8: bound 8 (attained by a 4x2 band).
        res = bollobas_leader_bound(4, 2, 8)
        assert res.value == pytest.approx(8.0)
        assert res.r == 1

    def test_small_subset_prefers_r0(self):
        # t=4 in [4]^2: a 2x2 square, perimeter 8, r=0.
        res = bollobas_leader_bound(4, 2, 4)
        assert res.value == pytest.approx(8.0)
        assert res.r == 0

    def test_cubic_3d(self):
        # [4]^3, t = 32 = half: band 4x4x2 -> perimeter 2*16 = 32.
        res = bollobas_leader_bound(4, 3, 32)
        assert res.value == pytest.approx(32.0)

    def test_t_over_half_rejected(self):
        with pytest.raises(ValueError):
            bollobas_leader_bound(4, 2, 9)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            bollobas_leader_bound(0, 2, 1)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            bollobas_leader_bound(4, 0, 1)

    def test_matches_general_bound_on_cubic(self):
        for t in range(1, 9):
            cubic = bollobas_leader_bound(4, 2, t)
            general = torus_isoperimetric_bound((4, 4), t)
            assert cubic.value == pytest.approx(general.value)


class TestTheorem31:
    def test_unequal_dims_bisection(self):
        res = torus_isoperimetric_bound((6, 4), 12)
        assert res.value == pytest.approx(8.0)
        assert res.r == 1

    def test_per_r_values_exposed(self):
        res = torus_isoperimetric_bound((6, 4), 12)
        assert len(res.per_r) == 2
        assert min(res.per_r) == res.value

    def test_unpacking(self):
        value, r = torus_isoperimetric_bound((6, 4), 12)
        assert value == pytest.approx(8.0)
        assert r == 1

    def test_dims_order_irrelevant(self):
        a = torus_isoperimetric_bound((6, 4, 8), 24)
        b = torus_isoperimetric_bound((8, 6, 4), 24)
        assert a.value == pytest.approx(b.value)

    def test_single_dimension_ring(self):
        # Any arc of a ring has perimeter >= 2 (bound with r=0 gives 2).
        res = torus_isoperimetric_bound((10,), 5)
        assert res.value == pytest.approx(2.0)

    def test_rejects_oversized_t(self):
        with pytest.raises(ValueError):
            torus_isoperimetric_bound((4, 4), 100)

    def test_rejects_nonpositive_t(self):
        with pytest.raises(ValueError):
            torus_isoperimetric_bound((4, 4), 0)

    def test_is_lower_bound_for_cuboids_all_dims_ge_3(self):
        """Theorem 3.1 must lower-bound every cuboid's perimeter when all
        dimensions are proper cycles."""
        for dims in [(4, 3), (5, 4), (4, 4, 3), (6, 5, 3)]:
            total = math.prod(dims)
            for t in range(1, total // 2 + 1):
                shapes = list(enumerate_cuboid_shapes(dims, t))
                if not shapes:
                    continue
                _, per = best_cuboid(dims, t)
                bound = torus_isoperimetric_bound(dims, t).value
                assert bound <= per + 1e-9, (dims, t, bound, per)

    def test_tight_at_lemma_3_2_sizes(self):
        """Where the construction exists, the bound is attained exactly."""
        cases = [((4, 4), 4), ((4, 4), 8), ((6, 4), 12), ((4, 4, 3), 24),
                 ((9, 3, 3), 27)]
        for dims, t in cases:
            assert bound_is_attained(dims, t), (dims, t)
            _, per = best_cuboid(dims, t)
            bound = torus_isoperimetric_bound(dims, t).value
            assert per == pytest.approx(bound), (dims, t)


class TestReducedBound:
    def test_bgq_midplane_bisection(self):
        res = reduced_torus_bound((4, 4, 4, 4, 2), 256)
        assert res.value == pytest.approx(256.0)

    def test_drops_unit_dims(self):
        a = reduced_torus_bound((6, 4, 1, 1), 12)
        b = torus_isoperimetric_bound((6, 4), 12)
        assert a.value == pytest.approx(b.value)

    def test_matches_exact_cuboid_on_mixed_dims(self):
        # (4, 4, 2), t = 16 = half: optimal cuboid covers the 2-dim.
        res = reduced_torus_bound((4, 4, 2), 16)
        _, per = best_cuboid((4, 4, 2), 16)
        assert res.value <= per + 1e-9
        assert res.value == pytest.approx(per)

    def test_lower_bounds_two_covering_cuboids(self):
        """Valid lower bound for cuboids covering all 2-dims."""
        dims = (4, 3, 2)
        for t in (2, 4, 6, 8, 12):
            shapes = [
                s for s in enumerate_cuboid_shapes(dims, t) if s[-1] == 2
            ]
            if not shapes:
                continue
            from repro.isoperimetry.cuboids import cuboid_perimeter

            best = min(cuboid_perimeter((4, 3, 2), s) for s in shapes)
            bound = reduced_torus_bound(dims, t).value
            assert bound <= best + 1e-9, (t, bound, best)

    def test_pure_hypercube_powers_of_two(self):
        # (2,2,2), t=4: subcube bound = 4 * (3 - 2) = 4.
        res = reduced_torus_bound((2, 2, 2), 4)
        assert res.value == pytest.approx(4.0)


class TestBoundAttained:
    def test_attained_cases(self):
        assert bound_is_attained((4, 4), 4)
        assert bound_is_attained((6, 4), 12)

    def test_not_attained_cases(self):
        # t=3 in [4]^2: no integral square/band of volume 3 matches.
        assert not bound_is_attained((4, 4), 3)

    def test_side_must_fit(self):
        # t=9 in (3, 3, 3) would need a 3x3 face (r=1, side 3 fits) - ok;
        # but t=25 in (5, 5, 1): side 5 fits -> attained.
        assert bound_is_attained((5, 5, 1), 5)


class TestBoundResult:
    def test_repr(self):
        r = BoundResult(8.0, 1, (10.0, 8.0))
        assert "8.0" in repr(r)
