"""Unit tests for the 2-D grid isoperimetry (Ahlswede–Bezrukov)."""

from __future__ import annotations

import pytest

from repro.isoperimetry.exact import ExactSolver
from repro.isoperimetry.mesh2d import (
    corner_candidates,
    mesh2d_min_boundary,
    mesh2d_optimal_set,
    quasi_square_set,
)
from repro.topology.mesh import Mesh


class TestQuasiSquare:
    def test_exact_square(self):
        cells = quasi_square_set(4, 4, 4)
        assert len(cells) == 4

    def test_partial_column(self):
        cells = quasi_square_set(4, 4, 5)
        assert len(cells) == 5

    def test_all_sizes_have_right_cardinality(self):
        for m, n in [(4, 4), (2, 8), (8, 2), (3, 5), (1, 7)]:
            for t in range(1, m * n + 1):
                assert len(quasi_square_set(m, n, t)) == t, (m, n, t)

    def test_cells_inside_grid(self):
        for m, n in [(2, 8), (8, 2), (5, 3)]:
            for t in range(1, m * n + 1):
                for (x, y) in quasi_square_set(m, n, t):
                    assert 0 <= x < m and 0 <= y < n, (m, n, t)

    def test_validation(self):
        with pytest.raises(ValueError):
            quasi_square_set(4, 4, 0)
        with pytest.raises(ValueError):
            quasi_square_set(4, 4, 17)


class TestMinBoundary:
    def test_corner_square(self):
        assert mesh2d_min_boundary(4, 4, 4) == 4

    def test_two_columns(self):
        assert mesh2d_min_boundary(4, 4, 8) == 4

    def test_single_cell(self):
        assert mesh2d_min_boundary(4, 4, 1) == 2  # a corner cell

    def test_full_grid(self):
        assert mesh2d_min_boundary(3, 3, 9) == 0

    @pytest.mark.parametrize("m,n", [(4, 4), (3, 5), (2, 6), (4, 3)])
    def test_matches_brute_force(self, m, n):
        """Corner-candidate minimization equals the true optimum."""
        grid = Mesh((m, n))
        solver = ExactSolver(grid)
        for t in range(1, m * n // 2 + 1):
            assert (
                solver.min_perimeter(t)[0] == mesh2d_min_boundary(m, n, t)
            ), (m, n, t)

    def test_witness_achieves_boundary(self):
        grid = Mesh((4, 5))
        for t in range(1, 11):
            cells = mesh2d_optimal_set(4, 5, t)
            assert grid.cut_weight(cells) == mesh2d_min_boundary(4, 5, t)


class TestCandidates:
    def test_candidates_have_exact_size(self):
        for shape in corner_candidates(4, 5, 7):
            assert len(shape) == 7

    def test_candidates_fit(self):
        for shape in corner_candidates(3, 4, 5):
            for (x, y) in shape:
                assert 0 <= x < 3 and 0 <= y < 4

    def test_at_least_one_candidate(self):
        for t in range(1, 12):
            assert list(corner_candidates(3, 4, t))
