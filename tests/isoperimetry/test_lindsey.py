"""Unit tests for Lindsey's clique-product edge-isoperimetry (HyperX)."""

from __future__ import annotations

import math

import pytest

from repro.isoperimetry.exact import ExactSolver
from repro.isoperimetry.lindsey import (
    hyperx_bisection,
    lindsey_boundary_of_initial_segment,
    lindsey_min_boundary,
    lindsey_order,
    lindsey_set,
)
from repro.topology.clique_product import CliqueProduct


class TestOrder:
    def test_order_fills_largest_clique_first(self):
        order = list(lindsey_order((3, 2)))
        # First 3 entries differ only in the K3 coordinate.
        assert order[:3] == [(0, 0), (1, 0), (2, 0)]

    def test_order_is_a_permutation(self):
        order = list(lindsey_order((3, 2, 2)))
        assert len(order) == 12
        assert len(set(order)) == 12

    def test_set_prefix(self):
        s = lindsey_set((3, 2), 4)
        assert len(s) == 4
        assert s[:3] == [(0, 0), (1, 0), (2, 0)]


class TestBoundary:
    def test_full_row(self):
        assert lindsey_min_boundary((3, 2), 3) == 3

    def test_half_of_k4_k2(self):
        assert lindsey_min_boundary((4, 2), 4) == 4

    def test_segment_boundary_matches_graph_count(self):
        dims = (4, 3, 2)
        g = CliqueProduct(tuple(sorted(dims, reverse=True)))
        total = math.prod(dims)
        for t in range(1, total + 1):
            seg = set(lindsey_set(dims, t))
            assert g.cut_weight(seg) == lindsey_boundary_of_initial_segment(
                dims, t
            ), t

    @pytest.mark.parametrize("dims", [(3, 2), (4, 2), (2, 2, 2), (4, 3)])
    def test_matches_brute_force(self, dims):
        """Lindsey's theorem: initial segments are isoperimetric."""
        g = CliqueProduct(tuple(sorted(dims, reverse=True)))
        solver = ExactSolver(g)
        total = math.prod(dims)
        for t in range(1, total // 2 + 1):
            assert (
                solver.min_perimeter(t)[0]
                == lindsey_min_boundary(dims, t)
            ), (dims, t)

    def test_validation(self):
        with pytest.raises(ValueError):
            lindsey_min_boundary((3, 2), 0)
        with pytest.raises(ValueError):
            lindsey_min_boundary((3, 2), 7)


class TestHyperXBisection:
    def test_uniform(self):
        assert hyperx_bisection((4, 2)) == 4

    def test_matches_even_clique_cut(self):
        # K4 x K4: half of one K4: 2*2 * 4 lines = 16.
        assert hyperx_bisection((4, 4)) == 16

    def test_weighted(self):
        # Dragonfly group K16 x K6 with capacities (1, 3):
        # split K16: 8*8*6*1 = 384; split K6: 3*3*16*3 = 432.
        assert hyperx_bisection((16, 6), weights=(1.0, 3.0)) == 384.0

    def test_odd_clique(self):
        # K5: floor/ceil split: 2*3 = 6 edges.
        assert hyperx_bisection((5,)) == 6

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            hyperx_bisection((4, 2), weights=(1.0,))

    def test_no_nontrivial_dim(self):
        with pytest.raises(ValueError):
            hyperx_bisection((1, 1))
