"""Unit tests for Harper's hypercube edge-isoperimetry."""

from __future__ import annotations

import pytest

from repro.isoperimetry.exact import ExactSolver
from repro.isoperimetry.harper import (
    harper_boundary_of_initial_segment,
    harper_min_boundary,
    harper_set,
    hypercube_partition_bandwidth,
    subcube_boundary,
)
from repro.topology.hypercube import Hypercube


class TestHarperBoundary:
    def test_subcube_sizes(self):
        # t = 2^m: boundary 2^m (d - m).
        assert harper_min_boundary(4, 1) == 4
        assert harper_min_boundary(4, 2) == 6
        assert harper_min_boundary(4, 4) == 8
        assert harper_min_boundary(4, 8) == 8
        assert harper_min_boundary(4, 16) == 0

    def test_matches_subcube_formula(self):
        for d in range(1, 8):
            for m in range(d + 1):
                assert harper_min_boundary(d, 1 << m) == subcube_boundary(
                    d, m
                )

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_matches_brute_force(self, d):
        q = Hypercube(d)
        solver = ExactSolver(q)
        for t in range(1, 2 ** (d - 1) + 1):
            assert solver.min_perimeter(t)[0] == harper_min_boundary(d, t), t

    def test_segment_boundary_is_counted_correctly(self):
        q = Hypercube(4)
        for t in range(1, 17):
            seg = set(harper_set(4, t))
            assert q.cut_weight(seg) == harper_boundary_of_initial_segment(
                4, t
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            harper_min_boundary(3, 9)
        with pytest.raises(ValueError):
            harper_min_boundary(3, 0)
        with pytest.raises(ValueError):
            subcube_boundary(3, 4)


class TestHarperSet:
    def test_initial_segment(self):
        assert harper_set(3, 4) == [0, 1, 2, 3]

    def test_segment_of_power_of_two_is_subcube(self):
        # {0..7} in Q_4 is the subcube fixing the top bit to 0.
        seg = harper_set(4, 8)
        assert all(v < 8 for v in seg)


class TestPartitionBandwidth:
    def test_subcube_partition(self):
        assert hypercube_partition_bandwidth(10, 6) == 32

    def test_zero_dim_partition(self):
        assert hypercube_partition_bandwidth(10, 0) == 0

    def test_partition_cannot_exceed_machine(self):
        with pytest.raises(ValueError):
            hypercube_partition_bandwidth(4, 5)

    def test_equal_size_subcubes_equal_bandwidth(self):
        """Unlike tori, hypercube subcube allocations of equal size are
        isomorphic — no geometry spread to exploit."""
        assert (
            hypercube_partition_bandwidth(12, 8)
            == Hypercube(8).bisection_width()
        )
