"""Unit tests for the brute-force exact solver and conjecture probing."""

from __future__ import annotations

import pytest

from repro.isoperimetry.cuboids import best_cuboid
from repro.isoperimetry.exact import (
    ExactSolver,
    conjecture_counterexample,
    exact_isoperimetric_set,
    exact_min_perimeter,
    exact_profile,
)
from repro.topology.clique_product import CliqueProduct
from repro.topology.torus import Torus


class TestExactSolver:
    def test_ring_arc_perimeter(self):
        t = Torus((8,))
        solver = ExactSolver(t)
        for size in range(1, 5):
            cut, witness = solver.min_perimeter(size)
            assert cut == 2
            assert len(witness) == size

    def test_witness_achieves_cut(self, small_torus):
        solver = ExactSolver(small_torus)
        cut, witness = solver.min_perimeter(5)
        assert small_torus.cut_weight(witness) == cut

    def test_full_set_zero_perimeter(self):
        t = Torus((4,))
        cut, _ = ExactSolver(t).min_perimeter(4)
        assert cut == 0

    def test_too_large_graph_rejected(self):
        with pytest.raises(ValueError):
            ExactSolver(Torus((6, 5)))

    def test_size_validation(self, small_torus):
        solver = ExactSolver(small_torus)
        with pytest.raises(ValueError):
            solver.min_perimeter(0)
        with pytest.raises(ValueError):
            solver.min_perimeter(25)

    def test_exact_profile_halves(self):
        prof = exact_profile(Torus((4, 2)))
        assert set(prof) == {1, 2, 3, 4}
        assert prof[4] == 4.0  # bisection of the 4x2 torus

    def test_matches_cuboid_optimum_on_torus(self, small_torus):
        """On small tori the global optimum equals the best cuboid
        (evidence for the paper's conjecture)."""
        solver = ExactSolver(small_torus)
        for t in (2, 4, 6, 12):
            exact, _ = solver.min_perimeter(t)
            _, cub = best_cuboid(small_torus.dims, t)
            assert exact == cub, t

    def test_weighted_graph_path(self):
        g = CliqueProduct((2, 2), weights=(1.0, 3.0))
        solver = ExactSolver(g)
        assert not solver.is_uniform
        cut, witness = solver.min_perimeter(2)
        # Best pair joins the expensive (weight 3) edge, cutting the two
        # row edges (weight 1 each) x2 vertices = 2.0.
        assert cut == 2.0

    def test_uniform_fast_path_flag(self, small_torus):
        assert ExactSolver(small_torus).is_uniform

    def test_small_set_expansion_single_vertex(self):
        t = Torus((4, 4))
        h1 = ExactSolver(t).small_set_expansion(1)
        assert h1 == 1.0

    def test_small_set_expansion_decreases(self):
        t = Torus((4, 2))
        s = ExactSolver(t)
        h1 = s.small_set_expansion(1)
        h4 = s.small_set_expansion(4)
        assert h4 <= h1

    def test_convenience_wrappers(self, small_torus):
        cut = exact_min_perimeter(small_torus, 4)
        witness = exact_isoperimetric_set(small_torus, 4)
        assert small_torus.cut_weight(witness) == cut


class TestConjecture:
    @pytest.mark.parametrize("dims", [(4, 3), (5, 4), (4, 4), (3, 3), (6, 4)])
    def test_no_counterexample_on_small_tori(self, dims):
        """The paper conjectures the Theorem 3.1 bound holds for
        arbitrary subsets; verify no small torus refutes it."""
        assert conjecture_counterexample(dims) is None

    def test_3d_torus(self):
        assert conjecture_counterexample((3, 3, 3)) is None

    def test_rejects_length_two_dims(self):
        with pytest.raises(ValueError):
            conjecture_counterexample((4, 2))
