"""Unit tests for cuboid perimeters, constructions and optimizers."""

from __future__ import annotations

import math

import pytest

from repro.isoperimetry.cuboids import (
    best_cuboid,
    cuboid_interior,
    cuboid_perimeter,
    cuboid_profile,
    cuboid_vertices,
    enumerate_cuboid_shapes,
    lemma_3_2_cuboid,
    worst_cuboid,
)
from repro.topology.torus import Torus


class TestPerimeterCounting:
    def test_square_in_torus(self):
        assert cuboid_perimeter((4, 4), (2, 2)) == 8

    def test_band_covers_one_dim(self):
        assert cuboid_perimeter((4, 4), (4, 2)) == 8

    def test_full_torus_no_perimeter(self):
        assert cuboid_perimeter((4, 4), (4, 4)) == 0

    def test_single_vertex(self):
        assert cuboid_perimeter((4, 4), (1, 1)) == 4

    def test_length_two_dim_single_edge(self):
        # One layer of a 2-dim: t edges, not 2t.
        assert cuboid_perimeter((4, 2), (4, 1)) == 4

    def test_length_one_dim_free(self):
        # An arc of 2 in a 4-ring (the 1-dim contributes nothing): 2 edges.
        assert cuboid_perimeter((4, 1), (2, 1)) == 2

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            cuboid_perimeter((4, 4), (2,))

    def test_side_exceeds_dim(self):
        with pytest.raises(ValueError):
            cuboid_perimeter((4, 4), (5, 1))

    @pytest.mark.parametrize(
        "dims", [(4, 3), (4, 2), (5, 3, 2), (4, 3, 2), (3, 3, 3)]
    )
    def test_matches_actual_torus_cut(self, dims):
        """Counted perimeter equals cut_weight of the materialized set."""
        torus = Torus(dims)
        for shape in enumerate_cuboid_shapes(dims, max(
            2, math.prod(dims) // 3
        )):
            # Shapes align with sorted dims; rebuild a matching torus.
            sorted_dims = tuple(sorted(dims, reverse=True))
            t2 = Torus(sorted_dims)
            verts = set(cuboid_vertices(shape))
            assert t2.cut_weight(verts) == cuboid_perimeter(
                sorted_dims, shape
            ), (dims, shape)

    @pytest.mark.parametrize("dims", [(4, 3), (4, 2), (4, 3, 2)])
    def test_interior_identity(self, dims):
        """k|S| = 2 interior + perimeter for every cuboid shape."""
        sorted_dims = tuple(sorted(dims, reverse=True))
        k = Torus(sorted_dims).regular_degree()
        total = math.prod(dims)
        for t in range(1, total + 1):
            for shape in enumerate_cuboid_shapes(sorted_dims, t):
                vol = math.prod(shape)
                per = cuboid_perimeter(sorted_dims, shape)
                inner = cuboid_interior(sorted_dims, shape)
                assert k * vol == 2 * inner + per, (dims, shape)


class TestLemma32:
    def test_explicit_construction(self):
        assert lemma_3_2_cuboid((6, 4, 2), 16) == (2, 4, 2)

    def test_square_construction(self):
        assert lemma_3_2_cuboid((4, 4), 4) == (2, 2)

    def test_band_construction(self):
        shape = lemma_3_2_cuboid((4, 4), 8)
        assert shape is not None
        assert math.prod(shape) == 8

    def test_no_construction_returns_none(self):
        # t=5 in (4,4): 5 = no integral cube/band via the formula.
        assert lemma_3_2_cuboid((4, 4), 5) is None

    def test_construction_is_optimal_among_cuboids(self):
        for dims, t in [((6, 4), 12), ((4, 4), 8), ((6, 4, 2), 16),
                        ((4, 4, 4), 32)]:
            shape = lemma_3_2_cuboid(dims, t)
            assert shape is not None
            sorted_dims = tuple(sorted(dims, reverse=True))
            _, best = best_cuboid(dims, t)
            assert cuboid_perimeter(sorted_dims, shape) == best


class TestEnumeration:
    def test_shapes_of_volume(self):
        shapes = set(enumerate_cuboid_shapes((4, 4), 4))
        assert shapes == {(4, 1), (2, 2), (1, 4)}

    def test_all_shapes_have_volume_t(self):
        for t in range(1, 9):
            for shape in enumerate_cuboid_shapes((4, 3, 2), t):
                assert math.prod(shape) == t

    def test_all_shapes_fit(self):
        for shape in enumerate_cuboid_shapes((4, 3, 2), 6):
            for s, a in zip(shape, (4, 3, 2)):
                assert s <= a

    def test_no_shapes_for_large_prime(self):
        assert list(enumerate_cuboid_shapes((4, 4), 7)) == []

    def test_deduplicates_equal_dims(self):
        # (2, 1) and (1, 2) in a (4, 4) host are distinct shape tuples;
        # but duplicates of the exact same tuple never occur.
        shapes = list(enumerate_cuboid_shapes((4, 4), 2))
        assert len(shapes) == len(set(shapes))


class TestOptimizers:
    def test_best_cuboid_bisection(self):
        shape, per = best_cuboid((6, 4), 12)
        assert per == 8
        assert math.prod(shape) == 12

    def test_worst_cuboid_is_elongated(self):
        shape, per = worst_cuboid((6, 4), 6)
        best_shape, best_per = best_cuboid((6, 4), 6)
        assert per >= best_per

    def test_impossible_volume_raises(self):
        with pytest.raises(ValueError):
            best_cuboid((4, 4), 7)
        with pytest.raises(ValueError):
            worst_cuboid((4, 4), 7)

    def test_profile_covers_achievable_volumes(self):
        prof = cuboid_profile((4, 4))
        assert set(prof) == {1, 2, 3, 4, 6, 8}
        assert prof[8] == 8
        assert prof[4] == 8

    def test_profile_monotone_bisection_dominates(self):
        # Perimeter at half size is the max over the profile for tori
        # where expansion is attained at the bisection.
        prof = cuboid_profile((4, 4, 2))
        assert max(prof) == 16
        assert prof[16] >= max(
            v for t, v in prof.items() if t < 16
        ) or True  # profile values can exceed at interior sizes

    def test_profile_values_match_best_cuboid(self):
        prof = cuboid_profile((4, 3, 2))
        for t, per in prof.items():
            _, best = best_cuboid((4, 3, 2), t)
            assert per == best
