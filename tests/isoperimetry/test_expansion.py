"""Unit tests for small-set expansion and contention bounds."""

from __future__ import annotations

import pytest

from repro.isoperimetry.expansion import (
    contention_lower_bound,
    expansion_attained_at_bisection,
    small_set_expansion_exact,
    torus_small_set_expansion,
)
from repro.topology.torus import Torus


class TestExactExpansion:
    def test_h1_is_one_for_torus(self):
        assert small_set_expansion_exact(Torus((4, 4)), 1) == 1.0

    def test_monotone_nonincreasing_in_t(self):
        t = Torus((4, 2))
        values = [small_set_expansion_exact(t, k) for k in (1, 2, 4)]
        assert values == sorted(values, reverse=True)

    def test_matches_bisection_at_half(self):
        t = Torus((4, 2))
        # Bisection: 4 links, incident = 3 * 4 = 12 -> h = 1/3.
        assert small_set_expansion_exact(t, 4) == pytest.approx(1 / 3)


class TestCuboidExpansion:
    def test_matches_exact_on_small_torus(self):
        dims = (4, 3)
        exact = small_set_expansion_exact(Torus(dims), 6)
        cub = torus_small_set_expansion(dims, 6)
        assert cub == pytest.approx(exact)

    def test_bgq_partition_expansion(self):
        # (8, 4, 4, 4, 2) would be big; use a single midplane quarter.
        val = torus_small_set_expansion((4, 4, 2), 16)
        # Bisection: 16 links cut... perimeter 16, incident 5*16=80.
        assert val == pytest.approx(16 / (5 * 16))

    def test_requires_edges(self):
        with pytest.raises(ValueError):
            torus_small_set_expansion((1, 1))

    def test_attained_at_bisection_for_paper_partitions(self):
        """The paper: expansion is attained by the bisection for all
        networks considered — check on midplane-level geometries."""
        for dims in [(4, 1, 1, 1), (2, 2, 1, 1), (4, 2, 1, 1),
                     (3, 2, 2, 2), (4, 4)]:
            assert expansion_attained_at_bisection(dims), dims


class TestContentionBound:
    def test_scales_linearly_with_volume(self):
        a = contention_lower_bound((4, 4), 100.0)
        b = contention_lower_bound((4, 4), 200.0)
        assert b == pytest.approx(2 * a)

    def test_scales_inversely_with_bandwidth(self):
        a = contention_lower_bound((4, 4), 100.0, link_bandwidth=1.0)
        b = contention_lower_bound((4, 4), 100.0, link_bandwidth=2.0)
        assert a == pytest.approx(2 * b)

    def test_better_geometry_lower_bound(self):
        """The 2x2x1x1-style balanced torus has a smaller contention
        floor than the elongated 4x1x1x1-style one."""
        elongated = contention_lower_bound((16, 4), 1.0)
        balanced = contention_lower_bound((8, 8), 1.0)
        assert balanced < elongated

    def test_validation(self):
        with pytest.raises(ValueError):
            contention_lower_bound((4, 4), -1.0)
        with pytest.raises(ValueError):
            contention_lower_bound((4, 4), 1.0, link_bandwidth=0.0)
