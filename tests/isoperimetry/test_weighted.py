"""Unit tests for weighted isoperimetric analysis."""

from __future__ import annotations

import pytest

from repro.isoperimetry.cuboids import best_cuboid, cuboid_perimeter
from repro.isoperimetry.weighted import (
    best_weighted_cuboid,
    dragonfly_group_cut,
    weighted_cuboid_perimeter,
    weighted_torus_bisection,
)


class TestWeightedPerimeter:
    def test_unit_weights_match_unweighted(self):
        for dims, sides in [((4, 4), (2, 2)), ((4, 3, 2), (2, 3, 1))]:
            assert weighted_cuboid_perimeter(dims, sides) == cuboid_perimeter(
                dims, sides
            )

    def test_weights_scale_per_dimension(self):
        # (4, 4) with weights (1, 10): a 2x2 square cuts 4 edges per dim.
        assert weighted_cuboid_perimeter((4, 4), (2, 2), (1.0, 10.0)) == 44.0

    def test_covered_dim_contributes_nothing(self):
        assert weighted_cuboid_perimeter((4, 4), (4, 2), (100.0, 1.0)) == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_cuboid_perimeter((4, 4), (2, 2), (1.0,))
        with pytest.raises(ValueError):
            weighted_cuboid_perimeter((4, 4), (2, 2), (1.0, -1.0))


class TestBestWeightedCuboid:
    def test_unit_weights_match_unweighted_optimum(self):
        shape, cut = best_weighted_cuboid((6, 4), 12)
        _, expected = best_cuboid((6, 4), 12)
        assert cut == expected

    def test_weights_flip_the_optimal_orientation(self):
        # Unweighted: cover the 6-dim? For t=4 in (4, 4) with weight 10 on
        # dim 0: prefer cutting dim 1 (cheap) -> shape (4, 1) covers dim 0.
        shape, cut = best_weighted_cuboid((4, 4), 4, weights=(10.0, 1.0))
        assert shape == (4, 1)
        assert cut == 8.0

    def test_impossible_volume(self):
        with pytest.raises(ValueError):
            best_weighted_cuboid((4, 4), 7)

    def test_positional_dims_not_sorted(self):
        # dims given unsorted stay positional so weights line up.
        shape, _ = best_weighted_cuboid((2, 6), 6, weights=(1.0, 1.0))
        assert len(shape) == 2
        assert shape[0] <= 2 and shape[1] <= 6


class TestWeightedBisection:
    def test_uniform_matches_2n_over_l(self):
        assert weighted_torus_bisection((8, 4)) == 8.0

    def test_weights_can_move_the_cut(self):
        """The paper's Titan remark: with wide links on the long
        dimension, cutting the short one becomes optimal."""
        uniform = weighted_torus_bisection((8, 4))
        weighted = weighted_torus_bisection((8, 4), weights=(5.0, 1.0))
        # Uniform: cut the 8-dim (2*4*1 = 8). Weighted: the 8-dim cut
        # costs 40; the 4-dim cut costs 2*8*1 = 16.
        assert uniform == 8.0
        assert weighted == 16.0

    def test_no_even_dim(self):
        with pytest.raises(ValueError):
            weighted_torus_bisection((5, 3))


class TestDragonflyGroupCut:
    def test_aries_half_rows(self):
        # 8 of 16 rows, all 6 columns: 8*8*6 row edges, no column cut.
        assert dragonfly_group_cut(rows_taken=8) == 384.0

    def test_column_split_is_expensive(self):
        # All 16 rows, 3 of 6 columns: 3*3*16*3 = 432 weighted.
        cut = dragonfly_group_cut(rows_taken=16, cols_taken=3)
        assert cut == 432.0

    def test_paper_capacity_ordering(self):
        """Splitting the K6 backplane costs more capacity than splitting
        the K16 rows — the reason the weighted formulation is needed."""
        rows = dragonfly_group_cut(rows_taken=8)
        cols = dragonfly_group_cut(rows_taken=16, cols_taken=3)
        assert cols > rows

    def test_validation(self):
        with pytest.raises(ValueError):
            dragonfly_group_cut(rows_taken=17)
        with pytest.raises(ValueError):
            dragonfly_group_cut(rows_taken=8, cols_taken=7)
