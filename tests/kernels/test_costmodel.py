"""Unit tests for the calibrated cost model."""

from __future__ import annotations

import pytest

from repro.kernels.costmodel import (
    L2_BYTES_PER_NODE,
    aggregate_l2,
    caps_memory_footprint,
    l2_spill_penalty,
)


class TestFootprint:
    def test_paper_value_18_55_gb(self):
        """Section 4.3: 3 * (7/4)^4 * 8 * 9408^2 bytes = 18.55 GB."""
        gb = caps_memory_footprint(9408, 4) / 2**30
        assert gb == pytest.approx(18.55, abs=0.01)

    def test_no_bfs_steps(self):
        assert caps_memory_footprint(100, 0) == 3 * 8 * 100 * 100

    def test_grows_with_depth(self):
        assert caps_memory_footprint(100, 3) > caps_memory_footprint(100, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            caps_memory_footprint(0, 4)


class TestAggregateL2:
    def test_paper_values(self):
        """32, 64, 128 GB of combined L2 for 2/4/8 midplanes."""
        assert aggregate_l2(1024) == 32 * 2**30
        assert aggregate_l2(2048) == 64 * 2**30
        assert aggregate_l2(4096) == 128 * 2**30

    def test_constant(self):
        assert L2_BYTES_PER_NODE == 32 * 2**20


class TestSpillPenalty:
    def test_two_midplanes_spill(self):
        """18.55 GB x2 buffers > 32 GB aggregate L2 on 2 midplanes."""
        assert l2_spill_penalty(9408, 4, 1024) > 1.0

    def test_four_midplanes_fit(self):
        assert l2_spill_penalty(9408, 4, 2048) == 1.0

    def test_buffer_factor_matters(self):
        # Without the x2 buffer space, 18.55 GB fits in 32 GB.
        assert l2_spill_penalty(9408, 4, 1024, buffer_factor=1.0) == 1.0

    def test_custom_slowdown(self):
        assert l2_spill_penalty(9408, 4, 1024, slowdown=2.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            l2_spill_penalty(9408, 4, 1024, buffer_factor=0.0)
