"""Unit tests for classical kernel communication models."""

from __future__ import annotations

import math

import pytest

from repro.kernels.classical import (
    c25d_words_per_rank,
    nbody_ring_words_per_rank,
    ring_rank_pairs,
    summa_rank_pairs,
    summa_words_per_rank,
)


class TestSumma:
    def test_volume_formula(self):
        assert summa_words_per_rank(1000, 100) == pytest.approx(
            2 * 1000 * 1000 / 10
        )

    def test_requires_square_rank_count(self):
        with pytest.raises(ValueError):
            summa_words_per_rank(100, 10)

    def test_pairs_cover_rows_and_columns(self):
        pairs = list(summa_rank_pairs(9))
        # Each of 9 ranks talks to 2 row peers + 2 column peers.
        assert len(pairs) == 9 * 4
        assert all(a != b for a, b in pairs)

    def test_pairs_symmetric(self):
        pairs = set(summa_rank_pairs(16))
        assert all((b, a) in pairs for a, b in pairs)

    def test_pair_structure(self):
        p = 3
        pairs = set(summa_rank_pairs(9))
        for a, b in pairs:
            same_row = a // p == b // p
            same_col = a % p == b % p
            assert same_row or same_col


class Test25D:
    def test_c1_matches_summa_asymptotics(self):
        n, P = 1024, 64
        assert c25d_words_per_rank(n, P, c=1) == pytest.approx(
            2 * n * n / math.sqrt(P)
        )

    def test_replication_reduces_volume(self):
        n, P = 1024, 64
        v1 = c25d_words_per_rank(n, P, c=1)
        v4 = c25d_words_per_rank(n, P, c=4)
        assert v4 == pytest.approx(v1 / 2)

    def test_replication_limit(self):
        with pytest.raises(ValueError):
            c25d_words_per_rank(1024, 64, c=64)


class TestNBody:
    def test_ring_volume(self):
        assert nbody_ring_words_per_rank(1000, 10) == pytest.approx(900.0)

    def test_single_rank(self):
        assert nbody_ring_words_per_rank(100, 1) == pytest.approx(100.0)

    def test_ring_pairs(self):
        pairs = list(ring_rank_pairs(4))
        assert pairs == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_ring_needs_two(self):
        with pytest.raises(ValueError):
            list(ring_rank_pairs(1))

    def test_contention_ratio_ordering(self):
        """N-body moves ~sqrt(P) x more data per rank than SUMMA at the
        same memory footprint — the paper's future-work point that
        N-body is more bisection-sensitive."""
        P = 64
        n = 1024              # matrix memory ~ n^2/P per rank
        bodies = n * n        # same total memory scale
        matmul = summa_words_per_rank(n, P)
        nbody = nbody_ring_words_per_rank(bodies, P)
        assert nbody > matmul
