"""Unit tests for the distributed-FFT communication model."""

from __future__ import annotations

import math

import pytest

from repro.kernels.fft import (
    fft_flops,
    fft_flops_per_word,
    fft_transpose_block_words,
    fft_transpose_words_per_rank,
)


class TestFlops:
    def test_formula(self):
        assert fft_flops(1024) == pytest.approx(5 * 1024 * 10)

    def test_single_point(self):
        assert fft_flops(1) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fft_flops(0)


class TestTransposeVolumes:
    def test_words_per_rank(self):
        # n=1024, P=16: local 64, (P-1)/P of it leaves.
        assert fft_transpose_words_per_rank(1024, 16) == pytest.approx(
            64 * 15 / 16
        )

    def test_block_words(self):
        assert fft_transpose_block_words(1024, 16) == pytest.approx(4.0)

    def test_block_times_peers_equals_total(self):
        n, p = 2**20, 64
        total = fft_transpose_block_words(n, p) * (p - 1)
        assert total == pytest.approx(fft_transpose_words_per_rank(n, p))

    def test_single_rank_no_communication(self):
        assert fft_transpose_words_per_rank(1024, 1) == 0.0


class TestRatio:
    def test_flops_per_word_is_logarithmic(self):
        """FFT moves O(1/log n) of matmul's compute per word — the
        paper's reason to expect stronger bisection sensitivity."""
        r1 = fft_flops_per_word(2**20, 64)
        r2 = fft_flops_per_word(2**24, 64)
        # Ratio grows only like log n.
        assert r2 / r1 == pytest.approx(24 / 20, rel=0.05)

    def test_far_below_matmul(self):
        """FFT's flops-per-word is O(log n) while matmul's grows like
        n/sqrt(P); at production sizes the gap is an order of
        magnitude."""
        from repro.kernels.classical import summa_words_per_rank

        n_fft, p = 2**24, 64
        fft_ratio = fft_flops_per_word(n_fft, p)
        n_mm = 16384
        mm_flops_per_rank = 2 * n_mm**3 / p
        mm_ratio = mm_flops_per_rank / summa_words_per_rank(n_mm, p)
        assert fft_ratio < mm_ratio / 10
