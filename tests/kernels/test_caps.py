"""Unit tests for the CAPS communication model."""

from __future__ import annotations

import math

import pytest

from repro.kernels.caps import (
    CapsConfig,
    caps_computation_time,
    caps_steps,
    caps_total_words_per_rank,
    split_rank_count,
    step_rank_pairs,
)


class TestSplitRankCount:
    def test_paper_rank_counts(self):
        assert split_rank_count(31213) == (13, 4)
        assert split_rank_count(117649) == (1, 6)
        assert split_rank_count(2401) == (1, 4)
        assert split_rank_count(4802) == (2, 4)
        assert split_rank_count(9604) == (4, 4)

    def test_no_seven_factor(self):
        assert split_rank_count(100) == (100, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_rank_count(0)


class TestConfig:
    def test_f_and_k(self):
        c = CapsConfig(n=32928, num_ranks=31213)
        assert c.f == 13
        assert c.k == 4

    def test_paper_constraints(self):
        # f = 13 > 6: the reference implementation's constraint fails.
        assert not CapsConfig(
            n=32928, num_ranks=31213
        ).satisfies_paper_constraints()
        # 2401 ranks, n = 9408: f=1, k=4, needs multiple of 49.
        assert CapsConfig(
            n=9408, num_ranks=2401
        ).satisfies_paper_constraints()

    def test_digit_order_validation(self):
        with pytest.raises(ValueError):
            CapsConfig(n=64, num_ranks=49, digit_order="middle")

    def test_basic_validation(self):
        with pytest.raises(ValueError):
            CapsConfig(n=0, num_ranks=49)
        with pytest.raises(ValueError):
            CapsConfig(n=64, num_ranks=49, comm_factor=0.0)


class TestSteps:
    def test_step_count(self):
        assert len(caps_steps(CapsConfig(n=64, num_ranks=49))) == 2
        assert len(caps_steps(CapsConfig(n=64, num_ranks=2 * 49))) == 3

    def test_f_step_first_when_f_gt_1(self):
        steps = caps_steps(CapsConfig(n=64, num_ranks=3 * 49))
        assert steps[0].group_size == 3
        assert all(s.group_size == 7 for s in steps[1:])

    def test_volumes_grow_with_depth(self):
        steps = caps_steps(CapsConfig(n=1024, num_ranks=2401))
        vols = [s.words_per_rank for s in steps]
        assert vols == sorted(vols)
        assert vols[1] == pytest.approx(vols[0] * 7 / 4)

    def test_deep_major_strides_grow(self):
        steps = caps_steps(
            CapsConfig(n=64, num_ranks=343, digit_order="deep-major")
        )
        strides = [s.stride for s in steps]
        assert strides == [1, 7, 49]

    def test_top_major_strides_shrink(self):
        steps = caps_steps(
            CapsConfig(n=64, num_ranks=343, digit_order="top-major")
        )
        strides = [s.stride for s in steps]
        assert strides == [49, 7, 1]

    def test_total_words_telescopes(self):
        c = CapsConfig(n=1024, num_ranks=2401)
        total = caps_total_words_per_rank(c)
        share = 1024 * 1024 / 2401
        expected = c.comm_factor * share * sum(
            (7 / 4) ** i for i in range(4)
        )
        assert total == pytest.approx(expected)

    def test_f_step_does_not_change_share(self):
        with_f = caps_steps(CapsConfig(n=1024, num_ranks=2 * 49))
        assert with_f[0].words_per_rank == pytest.approx(
            with_f[1].words_per_rank
        )

    def test_bytes_per_rank(self):
        step = caps_steps(CapsConfig(n=64, num_ranks=49))[0]
        assert step.bytes_per_rank == step.words_per_rank * 8


class TestRankPairs:
    @pytest.mark.parametrize("order", ["deep-major", "top-major"])
    def test_every_rank_has_g_minus_1_partners(self, order):
        c = CapsConfig(n=64, num_ranks=49, digit_order=order)
        for step in caps_steps(c):
            pairs = list(step_rank_pairs(c, step))
            assert len(pairs) == 49 * (step.group_size - 1)
            senders = [s for s, _ in pairs]
            assert all(0 <= r < 49 for r, _ in pairs)
            assert all(0 <= r < 49 for _, r in pairs)

    def test_pairs_symmetric(self):
        c = CapsConfig(n=64, num_ranks=49)
        for step in caps_steps(c):
            pairs = set(step_rank_pairs(c, step))
            assert all((b, a) in pairs for a, b in pairs)

    def test_no_self_pairs(self):
        c = CapsConfig(n=64, num_ranks=3 * 49)
        for step in caps_steps(c):
            assert all(a != b for a, b in step_rank_pairs(c, step))

    def test_partners_differ_in_one_digit(self):
        """Partners share position within subgroup: they differ by a
        multiple of the stride, staying inside one block."""
        c = CapsConfig(n=64, num_ranks=343)
        for step in caps_steps(c):
            block = step.group_size * step.stride
            for a, b in step_rank_pairs(c, step):
                assert (a - b) % step.stride == 0
                assert a // block == b // block


class TestComputationTime:
    def test_matches_paper_calibration(self):
        """The calibrated flop rate reproduces the paper's measured
        computation times within 30%."""
        cases = {
            (32928, 31213): 0.554,
            (21952, 117649): 0.0604,
        }
        for (n, ranks), measured in cases.items():
            t = caps_computation_time(CapsConfig(n=n, num_ranks=ranks))
            assert t == pytest.approx(measured, rel=0.45), (n, ranks, t)

    def test_geometry_independent(self):
        """Computation depends only on (n, ranks) — never on geometry."""
        a = caps_computation_time(CapsConfig(n=9408, num_ranks=2401))
        b = caps_computation_time(CapsConfig(n=9408, num_ranks=2401))
        assert a == b

    def test_scales_inversely_with_ranks_at_fixed_k(self):
        t1 = caps_computation_time(CapsConfig(n=9408, num_ranks=2401))
        t2 = caps_computation_time(CapsConfig(n=9408, num_ranks=4802))
        assert t2 == pytest.approx(t1 / 2)

    def test_flop_rate_validation(self):
        with pytest.raises(ValueError):
            caps_computation_time(
                CapsConfig(n=64, num_ranks=49), flop_rate=0.0
            )
