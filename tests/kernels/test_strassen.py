"""Unit tests for the Strassen–Winograd implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.strassen import (
    classical_flop_count,
    matrix_dim_constraint,
    required_rank_count,
    strassen_flop_count,
    strassen_winograd,
)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16, 33, 64])
    def test_matches_numpy_square(self, n):
        rng = np.random.default_rng(n)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        assert np.allclose(strassen_winograd(A, B, cutoff=4), A @ B)

    @pytest.mark.parametrize("shape", [(8, 12, 16), (10, 6, 14), (5, 9, 3)])
    def test_matches_numpy_rectangular(self, shape):
        m, k, n = shape
        rng = np.random.default_rng(0)
        A = rng.standard_normal((m, k))
        B = rng.standard_normal((k, n))
        assert np.allclose(strassen_winograd(A, B, cutoff=2), A @ B)

    def test_identity(self):
        A = np.eye(16)
        B = np.arange(256, dtype=float).reshape(16, 16)
        assert np.allclose(strassen_winograd(A, B, cutoff=4), B)

    def test_integer_inputs_promoted(self):
        A = np.arange(16).reshape(4, 4)
        B = np.arange(16).reshape(4, 4)
        out = strassen_winograd(A, B, cutoff=2)
        assert np.allclose(out, A @ B)
        assert out.dtype == np.float64

    def test_complex_inputs(self):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        assert np.allclose(strassen_winograd(A, B, cutoff=2), A @ B)

    def test_large_cutoff_equals_blas(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((32, 32))
        B = rng.standard_normal((32, 32))
        assert np.allclose(strassen_winograd(A, B, cutoff=64), A @ B)

    def test_numerical_stability_reasonable(self):
        """Strassen loses some accuracy vs BLAS but must stay close."""
        rng = np.random.default_rng(3)
        n = 128
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        err = np.abs(strassen_winograd(A, B, cutoff=8) - A @ B).max()
        assert err < 1e-9 * n


class TestValidation:
    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            strassen_winograd(np.zeros((4, 4)), np.zeros((5, 4)))

    def test_non_2d(self):
        with pytest.raises(ValueError):
            strassen_winograd(np.zeros(4), np.zeros((4, 4)))

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            strassen_winograd(np.zeros((4, 4)), np.zeros((4, 4)), cutoff=1)
        with pytest.raises(ValueError):
            strassen_winograd(np.zeros((4, 4)), np.zeros((4, 4)), cutoff=0)


class TestFlopCounts:
    def test_classical(self):
        assert classical_flop_count(2) == 12
        assert classical_flop_count(1) == 1

    def test_strassen_zero_levels_is_classical(self):
        assert strassen_flop_count(64, 0) == classical_flop_count(64)

    def test_strassen_beats_classical_at_depth(self):
        n = 1024
        assert strassen_flop_count(n, 5) < classical_flop_count(n)

    def test_recursion_formula(self):
        # One level: 7 * classical(n/2) + 15 * (n/2)^2.
        n = 64
        expected = 7 * classical_flop_count(32) + 15 * 32 * 32
        assert strassen_flop_count(n, 1) == expected

    def test_divisibility_required(self):
        with pytest.raises(ValueError):
            strassen_flop_count(10, 2)


class TestCapsConstraints:
    def test_rank_counts(self):
        assert required_rank_count(6, 4) == 6 * 2401
        assert required_rank_count(1, 6) == 117649

    def test_dim_constraint(self):
        # f * 2^r * 7^ceil(k/2).
        assert matrix_dim_constraint(6, 4) == 6 * 49
        assert matrix_dim_constraint(1, 5, r=2) == 4 * 343

    def test_paper_parameters_satisfy_constraint(self):
        # n = 32928 with f=6*? ... 32928 = 2^5 * 3 * 343: divisible by
        # the f=6, k=4 requirement 6 * 7^2 = 294.
        assert 32928 % matrix_dim_constraint(6, 4) == 0
        # n = 21952 = 2^6 * 343 for 7^6 ranks: 7^3 = 343 divides it.
        assert 21952 % matrix_dim_constraint(1, 6) == 0
        # n = 9408 = 2^5 * 294 for 7^4 ranks.
        assert 9408 % matrix_dim_constraint(1, 4) == 0
