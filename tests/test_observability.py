"""Unit tests for the tracing/metrics/profiling subsystem."""

from __future__ import annotations

import json

import pytest

from repro import observability
from repro.caching import memoized
from repro.parallel import sweep_map


@pytest.fixture(autouse=True)
def obs_sandbox():
    """Isolate each test from (and restore) the process trace state.

    The suite may itself run under ``REPRO_TRACE=1`` (the traced CI
    leg); saving and restoring the whole state keeps these tests from
    wiping or polluting the session's trace.
    """
    s = observability.OBS
    saved = (
        s.enabled, s.events, s.dropped_events, s.stack,
        s.span_totals, s.counters, s.gauges, s.origin,
    )
    s.enabled = False
    s.reset()
    yield
    (
        s.enabled, s.events, s.dropped_events, s.stack,
        s.span_totals, s.counters, s.gauges, s.origin,
    ) = saved


class TestEnableDisable:
    def test_disabled_by_default_in_sandbox(self):
        assert not observability.enabled()

    def test_enable_disable_roundtrip(self):
        observability.enable()
        assert observability.enabled()
        observability.disable()
        assert not observability.enabled()

    def test_reset_keeps_flag_drops_metrics(self):
        observability.enable()
        observability.counter_add("x")
        observability.reset()
        assert observability.enabled()
        assert observability.OBS.counters == {}


class TestEnvConfiguration:
    @pytest.mark.parametrize("raw", ["", "0", "false", "no", "off", "OFF"])
    def test_falsey_values_disable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert observability.configure_from_env() is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on"])
    def test_truthy_values_enable_without_path(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert observability.configure_from_env() is True
        assert observability.env_trace_path() is None

    def test_path_value_enables_and_names_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/tmp/run.jsonl")
        assert observability.configure_from_env() is True
        assert observability.env_trace_path() == "/tmp/run.jsonl"

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert observability.configure_from_env() is False
        assert observability.env_trace_path() is None


class TestSpans:
    def test_disabled_span_records_nothing(self):
        with observability.span("a"):
            pass
        assert observability.OBS.span_totals == {}
        assert observability.OBS.events == []

    def test_span_records_totals_and_event(self):
        observability.enable()
        with observability.span("outer", size=4):
            with observability.span("inner"):
                pass
        totals = observability.OBS.span_totals
        assert totals["outer"][0] == 1 and totals["inner"][0] == 1
        assert totals["outer"][1] >= totals["inner"][1] >= 0.0
        events = {name: (parent, depth)
                  for name, parent, depth, _, _, _ in
                  observability.OBS.events}
        assert events["inner"] == ("outer", 1)
        assert events["outer"] == (None, 0)

    def test_span_pops_stack_on_exception(self):
        observability.enable()
        with pytest.raises(RuntimeError):
            with observability.span("boom"):
                raise RuntimeError("x")
        assert observability.OBS.stack == []
        assert observability.OBS.span_totals["boom"][0] == 1

    def test_event_cap_drops_events_but_keeps_totals(self, monkeypatch):
        monkeypatch.setattr(observability, "MAX_EVENTS", 3)
        observability.enable()
        for _ in range(5):
            with observability.span("s"):
                pass
        assert len(observability.OBS.events) == 3
        assert observability.OBS.dropped_events == 2
        assert observability.OBS.span_totals["s"][0] == 5


class TestProfiled:
    def test_disabled_is_passthrough(self):
        @observability.profiled()
        def f(x):
            return x + 1

        assert f(1) == 2
        assert observability.OBS.span_totals == {}

    def test_enabled_records_default_name(self):
        @observability.profiled()
        def g(x):
            return x * 2

        observability.enable()
        assert g(3) == 6
        assert g.span_name in observability.OBS.span_totals
        assert "g" in g.span_name

    def test_explicit_name(self):
        @observability.profiled("custom.name")
        def h():
            return None

        observability.enable()
        h()
        assert observability.OBS.span_totals["custom.name"][0] == 1


class TestCountersGauges:
    def test_counter_disabled_noop(self):
        observability.counter_add("c", 5)
        assert observability.OBS.counters == {}

    def test_counter_accumulates(self):
        observability.enable()
        observability.counter_add("c")
        observability.counter_add("c", 2.5)
        assert observability.OBS.counters["c"] == pytest.approx(3.5)

    def test_gauge_overwrites(self):
        observability.enable()
        observability.gauge_set("g", 1)
        observability.gauge_set("g", 7)
        assert observability.OBS.gauges["g"] == 7.0


class TestSnapshotMerge:
    def test_snapshot_carries_metrics(self):
        observability.enable()
        observability.counter_add("c", 2)
        with observability.span("s"):
            pass
        snap = observability.worker_snapshot()
        assert snap.counters["c"] == 2.0
        assert snap.span_totals["s"][0] == 1
        assert snap.pid > 0 and snap.seq > 0

    def test_merge_adds_counters_and_span_totals(self):
        observability.enable()
        observability.counter_add("c", 1)
        snap = observability.TraceSnapshot(
            pid=1, seq=1,
            counters={"c": 4.0, "d": 1.0},
            gauges={"g": 3.0},
            span_totals={"s": (2, 0.5)},
            cache_counts={},
        )
        observability.merge_snapshot(snap)
        assert observability.OBS.counters["c"] == 5.0
        assert observability.OBS.counters["d"] == 1.0
        assert observability.OBS.gauges["g"] == 3.0
        assert observability.OBS.span_totals["s"] == [2, 0.5]

    def test_merge_gauges_take_max(self):
        observability.enable()
        observability.gauge_set("g", 9.0)
        snap = observability.TraceSnapshot(
            pid=1, seq=1, counters={}, gauges={"g": 3.0},
            span_totals={}, cache_counts={},
        )
        observability.merge_snapshot(snap)
        assert observability.OBS.gauges["g"] == 9.0

    def test_merge_cache_counts_even_when_disabled(self):
        @memoized(maxsize=4)
        def _probe(x):
            return x

        _probe.cache_clear()
        snap = observability.TraceSnapshot(
            pid=1, seq=1, counters={"c": 1.0}, gauges={},
            span_totals={},
            cache_counts={_probe.cache.name: (3, 2)},
        )
        observability.merge_snapshot(snap)
        info = _probe.cache_info()
        assert (info.hits, info.misses) == (3, 2)
        # ...but trace metrics do not merge into a disabled collector.
        assert observability.OBS.counters == {}


def _traced_square(x: int) -> int:
    observability.counter_add("test.worker_calls")
    return x * x


class TestWorkerMergeThroughSweepMap:
    def test_worker_counters_merge_into_parent(self):
        observability.enable()
        results = sweep_map(_traced_square, list(range(8)), jobs=2)
        assert results == [x * x for x in range(8)]
        # All 8 task calls are visible in the parent, whether they ran
        # in workers (merged snapshots) or serially (pool fallback).
        assert observability.OBS.counters["test.worker_calls"] == 8.0

    def test_parallel_sweep_span_and_counters(self):
        observability.enable()
        sweep_map(_traced_square, list(range(6)), jobs=2)
        assert observability.OBS.counters["parallel.tasks"] == 6.0
        assert "parallel.sweep" in observability.OBS.span_totals


class TestExportSummarize:
    def test_roundtrip(self, tmp_path):
        observability.enable()
        with observability.span("layer.op", n=2):
            observability.counter_add("layer.count", 3)
        observability.gauge_set("layer.gauge", 4)
        path = tmp_path / "trace.jsonl"
        n = observability.export_jsonl(path)
        assert n >= 4  # meta + span_total + counter + gauge + span
        lines = path.read_text().strip().splitlines()
        assert len(lines) == n
        meta = json.loads(lines[0])
        assert meta["type"] == "meta" and meta["version"] == 1

        summary = observability.summarize_jsonl(path)
        assert summary["spans"]["layer.op"]["count"] == 1
        assert summary["counters"]["layer.count"] == 3.0
        assert summary["gauges"]["layer.gauge"] == 4.0
        assert summary["span_events"] == 1
        assert summary["meta"]["pid"] == meta["pid"]

    def test_export_includes_cache_records(self, tmp_path):
        @memoized(maxsize=4)
        def _cached(x):
            return x

        _cached.cache_clear()
        _cached(1)
        _cached(1)
        observability.enable()
        path = tmp_path / "trace.jsonl"
        observability.export_jsonl(path)
        summary = observability.summarize_jsonl(path)
        info = summary["caches"][_cached.cache.name]
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_rate"] == pytest.approx(0.5)

    def test_summarize_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            observability.summarize_jsonl(path)

    def test_summarize_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no trace records"):
            observability.summarize_jsonl(path)
