"""Unit tests for size-only request variability simulation."""

from __future__ import annotations

import pytest

from repro.allocation.advisor import JobRequest
from repro.allocation.policy import juqueen_policy, mira_policy
from repro.allocation.variability import (
    SELECTION_RULES,
    simulate_job_stream,
)


@pytest.fixture
def job():
    return JobRequest(8, 3600.0, 0.5)


class TestSelectionRules:
    def test_best_is_constant_optimal(self, job):
        rep = simulate_job_stream(juqueen_policy(), job, 5, "best")
        assert rep.spread == 1.0
        assert all(t == pytest.approx(3600.0) for t in rep.runtimes)

    def test_worst_is_constant_inflated(self, job):
        rep = simulate_job_stream(juqueen_policy(), job, 5, "worst")
        # 50% compute + 50% comm x2 = 1.5x.
        assert all(t == pytest.approx(5400.0) for t in rep.runtimes)

    def test_random_seeded_deterministic(self, job):
        a = simulate_job_stream(juqueen_policy(), job, 20, "random", seed=3)
        b = simulate_job_stream(juqueen_policy(), job, 20, "random", seed=3)
        assert a.runtimes == b.runtimes

    def test_random_varies_across_seeds(self, job):
        a = simulate_job_stream(juqueen_policy(), job, 20, "random", seed=1)
        b = simulate_job_stream(juqueen_policy(), job, 20, "random", seed=2)
        assert a.runtimes != b.runtimes

    def test_random_eventually_sees_both_geometries(self, job):
        rep = simulate_job_stream(
            juqueen_policy(), job, 50, "random", seed=0
        )
        assert rep.distinct_geometries == 2
        assert rep.spread == pytest.approx(1.5)

    def test_first_fit_deterministic(self, job):
        a = simulate_job_stream(juqueen_policy(), job, 5, "first-fit")
        assert a.spread == 1.0

    def test_unknown_rule(self, job):
        with pytest.raises(ValueError):
            simulate_job_stream(juqueen_policy(), job, 5, "chaotic")


class TestEdgeCases:
    def test_predefined_policy_has_no_variability(self, job):
        """Mira's list policy always serves the same geometry."""
        rep = simulate_job_stream(mira_policy(), job, 10, "random")
        assert rep.spread == 1.0
        assert rep.distinct_geometries == 1

    def test_unsupported_size(self):
        job = JobRequest(11, 100.0, 0.5)
        with pytest.raises(ValueError):
            simulate_job_stream(juqueen_policy(), job, 5, "random")

    def test_compute_bound_job_immune(self):
        """A zero-contention job shows no variance even under roulette."""
        job = JobRequest(8, 100.0, 0.0)
        rep = simulate_job_stream(
            juqueen_policy(), job, 30, "random", seed=0
        )
        assert rep.spread == 1.0

    def test_report_stats(self, job):
        rep = simulate_job_stream(juqueen_policy(), job, 30, "random")
        assert rep.mean > 0
        assert rep.stdev >= 0
        assert len(rep.runtimes) == 30
