"""Unit tests for the contention-aware scheduling advisor."""

from __future__ import annotations

import pytest

from repro.allocation.advisor import (
    AdvisorDecision,
    JobRequest,
    SchedulingAdvisor,
)
from repro.allocation.geometry import PartitionGeometry
from repro.allocation.policy import juqueen_policy


@pytest.fixture
def advisor() -> SchedulingAdvisor:
    return SchedulingAdvisor(juqueen_policy())


@pytest.fixture
def contention_job() -> JobRequest:
    return JobRequest(
        num_midplanes=8, optimal_runtime=3600.0, contention_fraction=0.5
    )


class TestJobRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobRequest(0, 100.0, 0.5)
        with pytest.raises(ValueError):
            JobRequest(8, -1.0, 0.5)
        with pytest.raises(ValueError):
            JobRequest(8, 100.0, 1.5)

    def test_runtime_on_optimal_geometry(self, contention_job):
        best = PartitionGeometry((2, 2, 2, 1))
        assert contention_job.runtime_on(best, 1024) == pytest.approx(3600.0)

    def test_runtime_on_suboptimal_inflates_comm_only(self, contention_job):
        worst = PartitionGeometry((4, 2, 1, 1))  # bw 512 vs best 1024
        t = contention_job.runtime_on(worst, 1024)
        # compute 1800 + comm 1800 * 2 = 5400.
        assert t == pytest.approx(5400.0)

    def test_pure_compute_job_indifferent(self):
        job = JobRequest(8, 1000.0, 0.0)
        worst = PartitionGeometry((4, 2, 1, 1))
        assert job.runtime_on(worst, 1024) == pytest.approx(1000.0)


class TestDecide:
    def test_allocate_when_optimal_available(self, advisor, contention_job):
        best = PartitionGeometry((2, 2, 2, 1))
        d = advisor.decide(contention_job, best, expected_wait=100.0)
        assert d.action == "allocate"

    def test_wait_when_short_queue_and_big_gain(self, advisor, contention_job):
        worst = PartitionGeometry((4, 2, 1, 1))
        d = advisor.decide(contention_job, worst, expected_wait=100.0)
        assert d.action == "wait"
        assert d.wait_time == pytest.approx(3700.0)
        assert d.available_time == pytest.approx(5400.0)
        assert d.regret == pytest.approx(1700.0)

    def test_allocate_when_queue_too_long(self, advisor, contention_job):
        worst = PartitionGeometry((4, 2, 1, 1))
        d = advisor.decide(contention_job, worst, expected_wait=5000.0)
        assert d.action == "allocate"

    def test_size_mismatch_rejected(self, advisor, contention_job):
        with pytest.raises(ValueError):
            advisor.decide(
                contention_job, PartitionGeometry((2, 2, 1, 1)), 100.0
            )

    def test_negative_wait_rejected(self, advisor, contention_job):
        with pytest.raises(ValueError):
            advisor.decide(
                contention_job, PartitionGeometry((4, 2, 1, 1)), -1.0
            )

    def test_compute_bound_job_always_allocates(self, advisor):
        job = JobRequest(8, 1000.0, 0.0)
        worst = PartitionGeometry((4, 2, 1, 1))
        d = advisor.decide(job, worst, expected_wait=1.0)
        assert d.action == "allocate"


class TestBreakeven:
    def test_zero_for_optimal(self, advisor, contention_job):
        best = PartitionGeometry((2, 2, 2, 1))
        assert advisor.breakeven_wait(contention_job, best) == 0.0

    def test_equals_comm_inflation(self, advisor, contention_job):
        worst = PartitionGeometry((4, 2, 1, 1))
        assert advisor.breakeven_wait(contention_job, worst) == pytest.approx(
            1800.0
        )

    def test_decision_consistent_with_breakeven(self, advisor, contention_job):
        worst = PartitionGeometry((4, 2, 1, 1))
        breakeven = advisor.breakeven_wait(contention_job, worst)
        below = advisor.decide(contention_job, worst, breakeven * 0.9)
        above = advisor.decide(contention_job, worst, breakeven * 1.1)
        assert below.action == "wait"
        assert above.action == "allocate"
