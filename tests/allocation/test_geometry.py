"""Unit tests for PartitionGeometry."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.machines.catalog import JUQUEEN, MIRA


class TestCanonicalization:
    def test_sorted_and_padded(self):
        assert PartitionGeometry((1, 2, 2)).dims == (2, 2, 1, 1)
        assert PartitionGeometry((3,)).dims == (3, 1, 1, 1)

    def test_rotations_identified(self):
        assert PartitionGeometry((2, 1, 2, 1)) == PartitionGeometry(
            (1, 1, 2, 2)
        )

    def test_too_many_dims(self):
        with pytest.raises(ValueError):
            PartitionGeometry((2, 2, 2, 2, 2))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            PartitionGeometry((0, 2))

    def test_hashable(self):
        s = {PartitionGeometry((2, 2, 1, 1)), PartitionGeometry((1, 1, 2, 2))}
        assert len(s) == 1


class TestQuantities:
    def test_counts(self):
        g = PartitionGeometry((3, 2, 2, 2))
        assert g.num_midplanes == 24
        assert g.num_nodes == 12288
        assert g.node_dims == (12, 8, 8, 8, 2)

    def test_bandwidth_table1_rows(self):
        assert PartitionGeometry((4, 1, 1, 1)).normalized_bisection_bandwidth == 256
        assert PartitionGeometry((2, 2, 1, 1)).normalized_bisection_bandwidth == 512
        assert PartitionGeometry((3, 2, 2, 2)).normalized_bisection_bandwidth == 2048

    def test_bandwidth_gb(self):
        g = PartitionGeometry((2, 2, 1, 1))
        assert g.bisection_bandwidth_gb_per_s() == 1024.0

    def test_bandwidth_per_node(self):
        g = PartitionGeometry((2, 2, 1, 1))
        assert g.bandwidth_per_node == pytest.approx(512 / 2048)

    def test_longest_dim(self):
        assert PartitionGeometry((1, 4, 2)).longest_dim == 4

    def test_network_is_partition_torus(self):
        g = PartitionGeometry((2, 1, 1, 1))
        assert g.network().num_vertices == 1024
        assert g.midplane_network().num_vertices == 2


class TestShapePredicates:
    def test_ring(self):
        assert PartitionGeometry((4, 1, 1, 1)).is_ring()
        assert not PartitionGeometry((2, 2, 1, 1)).is_ring()

    def test_cube(self):
        assert PartitionGeometry((2, 2, 2, 2)).is_cube()
        assert not PartitionGeometry((2, 2, 2, 1)).is_cube()

    def test_aspect_ratio(self):
        assert PartitionGeometry((4, 1, 1, 1)).aspect_ratio() == 4.0
        assert PartitionGeometry((2, 2, 2, 2)).aspect_ratio() == 1.0


class TestRelations:
    def test_fits_in(self):
        assert PartitionGeometry((7, 2, 2, 2)).fits_in(JUQUEEN)
        assert not PartitionGeometry((7, 2, 2, 2)).fits_in(MIRA)
        assert PartitionGeometry((4, 4, 3, 2)).fits_in(MIRA)

    def test_ordering_by_size_then_bandwidth(self):
        worse = PartitionGeometry((4, 1, 1, 1))
        better = PartitionGeometry((2, 2, 1, 1))
        bigger = PartitionGeometry((4, 2, 1, 1))
        assert worse < better < bigger

    def test_label(self):
        assert PartitionGeometry((1, 2, 2)).label() == "2 x 2 x 1 x 1"

    def test_corollary_3_4_monotonicity(self):
        """Smaller longest dimension at equal size => more bandwidth."""
        from repro.allocation.enumeration import factorizations_into_dims

        for p in (4, 8, 16, 24, 48):
            geos = [
                PartitionGeometry(d)
                for d in factorizations_into_dims(p, 4)
            ]
            geos.sort(key=lambda g: g.longest_dim)
            for a, b in zip(geos, geos[1:]):
                if a.longest_dim < b.longest_dim:
                    assert (
                        a.normalized_bisection_bandwidth
                        > b.normalized_bisection_bandwidth
                    )
