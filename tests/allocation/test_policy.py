"""Unit tests for allocation policies."""

from __future__ import annotations

import pytest

from repro.allocation.policy import (
    FreeCuboidPolicy,
    PredefinedListPolicy,
    juqueen_policy,
    mira_policy,
    sequoia_policy,
)
from repro.machines.catalog import JUQUEEN, MIRA


class TestPredefinedList:
    def test_mira_supported_sizes(self):
        pol = mira_policy()
        assert pol.supported_sizes() == [1, 2, 4, 8, 16, 24, 32, 48, 64, 96]

    def test_single_geometry_per_size(self):
        pol = mira_policy()
        geos = pol.permissible_geometries(8)
        assert len(geos) == 1
        assert geos[0].dims == (4, 2, 1, 1)

    def test_unsupported_size_empty(self):
        pol = mira_policy()
        assert pol.permissible_geometries(3) == []
        assert not pol.supports(3)

    def test_best_equals_worst(self):
        pol = mira_policy()
        assert pol.best_geometry(16) == pol.worst_geometry(16)
        assert pol.bandwidth_spread(16) == 1.0

    def test_unsupported_size_raises_on_best(self):
        with pytest.raises(ValueError):
            mira_policy().best_geometry(5)

    def test_table_validation_size_mismatch(self):
        with pytest.raises(ValueError):
            PredefinedListPolicy(MIRA, {4: (2, 1, 1, 1)})

    def test_table_validation_fit(self):
        with pytest.raises(ValueError):
            PredefinedListPolicy(MIRA, {5: (5, 1, 1, 1)})

    def test_geometry_for(self):
        pol = mira_policy()
        assert pol.geometry_for(96).dims == (4, 4, 3, 2)
        with pytest.raises(KeyError):
            pol.geometry_for(5)


class TestFreeCuboid:
    def test_juqueen_spread_is_2_for_improvable_sizes(self):
        pol = juqueen_policy()
        for size in (4, 6, 8, 12, 16, 24):
            assert pol.bandwidth_spread(size) == 2.0

    def test_spread_is_1_for_forced_sizes(self):
        pol = juqueen_policy()
        for size in (1, 2, 3, 5, 7):
            assert pol.bandwidth_spread(size) == 1.0

    def test_best_and_worst_differ(self):
        pol = juqueen_policy()
        assert pol.best_geometry(8).dims == (2, 2, 2, 1)
        assert pol.worst_geometry(8).dims == (4, 2, 1, 1)

    def test_machine_accessor(self):
        assert juqueen_policy().machine is JUQUEEN

    def test_sequoia_supports_27(self):
        # 3^3 fits Sequoia's (4, 4, 4, 3)... needs three dims >= 3.
        pol = sequoia_policy()
        assert pol.supports(27)
        assert pol.best_geometry(27).dims == (3, 3, 3, 1)

    def test_supported_sizes_match_enumeration(self):
        pol = juqueen_policy()
        for size in pol.supported_sizes():
            assert pol.permissible_geometries(size)
