"""Unit tests for geometry enumeration."""

from __future__ import annotations

import math

import pytest

from repro.allocation.enumeration import (
    achievable_midplane_counts,
    enumerate_geometries,
    factorizations_into_dims,
)
from repro.machines.catalog import JUQUEEN, MIRA


class TestFactorizations:
    def test_eight_into_three(self):
        assert sorted(factorizations_into_dims(8, 3)) == [
            (2, 2, 2), (4, 2, 1), (8, 1, 1),
        ]

    def test_descending_order_invariant(self):
        for f in factorizations_into_dims(24, 4):
            assert list(f) == sorted(f, reverse=True)

    def test_product_invariant(self):
        for n in (1, 2, 12, 36, 60):
            for f in factorizations_into_dims(n, 4):
                assert math.prod(f) == n

    def test_max_len_filter(self):
        fs = list(factorizations_into_dims(8, 3, max_len=4))
        assert (8, 1, 1) not in fs
        assert (4, 2, 1) in fs

    def test_one(self):
        assert list(factorizations_into_dims(1, 4)) == [(1, 1, 1, 1)]

    def test_prime(self):
        assert list(factorizations_into_dims(7, 4)) == [(7, 1, 1, 1)]

    def test_no_duplicates(self):
        fs = list(factorizations_into_dims(64, 4))
        assert len(fs) == len(set(fs))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(factorizations_into_dims(0, 4))


class TestEnumerateGeometries:
    def test_juqueen_size_4(self):
        geos = enumerate_geometries(JUQUEEN, 4)
        assert [g.dims for g in geos] == [(2, 2, 1, 1), (4, 1, 1, 1)]

    def test_sorted_best_first(self):
        geos = enumerate_geometries(JUQUEEN, 8)
        bws = [g.normalized_bisection_bandwidth for g in geos]
        assert bws == sorted(bws, reverse=True)

    def test_all_fit(self):
        for size in (6, 12, 24, 56):
            for g in enumerate_geometries(JUQUEEN, size):
                assert g.fits_in(JUQUEEN)

    def test_impossible_size_empty(self):
        # 11 is prime and exceeds every JUQUEEN dimension except 7... and 11 > 7.
        assert enumerate_geometries(JUQUEEN, 11) == []

    def test_mira_9_midplanes(self):
        # 9 = 3x3 needs two dims >= 3: Mira has (4, 4, 3, 2) -> fits.
        geos = enumerate_geometries(MIRA, 9)
        assert [g.dims for g in geos] == [(3, 3, 1, 1)]


class TestAchievableCounts:
    def test_juqueen_counts(self):
        counts = achievable_midplane_counts(JUQUEEN)
        assert counts == [
            1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40,
            48, 56,
        ]

    def test_spiking_sizes_are_rings_only(self):
        """Sizes 5, 7 force ring geometries on JUQUEEN — Figure 2's
        'spiking' drops."""
        for size in (5, 7):
            geos = enumerate_geometries(JUQUEEN, size)
            assert len(geos) == 1
            assert geos[0].is_ring()

    def test_mira_includes_96(self):
        counts = achievable_midplane_counts(MIRA)
        assert 96 in counts
        assert 96 == max(counts)
