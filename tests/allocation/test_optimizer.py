"""Unit tests for the partition geometry optimizer (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.allocation.optimizer import (
    best_geometry_for_machine,
    best_worst_table,
    compare_policy_to_optimal,
    corollary_3_4_improves,
    improvable_sizes,
    worst_geometry_for_machine,
)
from repro.allocation.policy import juqueen_policy, mira_policy
from repro.machines.catalog import JUQUEEN, MIRA


class TestBestWorst:
    def test_mira_best_24(self):
        assert best_geometry_for_machine(MIRA, 24).dims == (3, 2, 2, 2)

    def test_mira_worst_24(self):
        worst = worst_geometry_for_machine(MIRA, 24)
        assert worst.normalized_bisection_bandwidth == 1536

    def test_impossible_size(self):
        with pytest.raises(ValueError):
            best_geometry_for_machine(JUQUEEN, 11)

    def test_best_has_max_bandwidth(self):
        from repro.allocation.enumeration import enumerate_geometries

        for size in (4, 8, 12, 24):
            best = best_geometry_for_machine(JUQUEEN, size)
            for g in enumerate_geometries(JUQUEEN, size):
                assert (
                    best.normalized_bisection_bandwidth
                    >= g.normalized_bisection_bandwidth
                )


class TestTable1Reproduction:
    def test_improvable_sizes_match_table1(self):
        rows = improvable_sizes(mira_policy())
        assert [r.num_midplanes for r in rows] == [4, 8, 16, 24]
        expected = {
            4: ((4, 1, 1, 1), 256, (2, 2, 1, 1), 512),
            8: ((4, 2, 1, 1), 512, (2, 2, 2, 1), 1024),
            16: ((4, 4, 1, 1), 1024, (2, 2, 2, 2), 2048),
            24: ((4, 3, 2, 1), 1536, (3, 2, 2, 2), 2048),
        }
        for r in rows:
            cur, cbw, prop, pbw = expected[r.num_midplanes]
            assert r.current.dims == cur
            assert r.current_bw == cbw
            assert r.proposed.dims == prop
            assert r.proposed_bw == pbw

    def test_improvement_factors(self):
        rows = {r.num_midplanes: r for r in improvable_sizes(mira_policy())}
        assert rows[4].improvement == 2.0
        assert rows[24].improvement == pytest.approx(4 / 3)

    def test_non_improvable_sizes_excluded(self):
        sizes = {r.num_midplanes for r in improvable_sizes(mira_policy())}
        for fixed in (1, 2, 32, 48, 64, 96):
            assert fixed not in sizes

    def test_full_comparison_covers_all_sizes(self):
        rows = compare_policy_to_optimal(mira_policy())
        assert [r.num_midplanes for r in rows] == [
            1, 2, 4, 8, 16, 24, 32, 48, 64, 96,
        ]

    def test_node_counts(self):
        rows = {r.num_midplanes: r for r in improvable_sizes(mira_policy())}
        assert rows[4].num_nodes == 2048
        assert rows[24].num_nodes == 12288


class TestTable2Reproduction:
    def test_juqueen_improvable_rows(self):
        rows = [r for r in best_worst_table(JUQUEEN) if r.is_improved]
        assert [r.num_midplanes for r in rows] == [4, 6, 8, 12, 16, 24]
        for r in rows:
            assert r.improvement == 2.0

    def test_free_policy_current_is_worst(self):
        rows = {
            r.num_midplanes: r
            for r in compare_policy_to_optimal(juqueen_policy())
        }
        assert rows[6].current.dims == (6, 1, 1, 1)
        assert rows[6].proposed.dims == (3, 2, 1, 1)


class TestCorollary34:
    def test_improves_iff_smaller_longest_dim(self):
        a = PartitionGeometry((4, 1, 1, 1))
        b = PartitionGeometry((2, 2, 1, 1))
        assert corollary_3_4_improves(a, b)
        assert not corollary_3_4_improves(b, a)
        assert not corollary_3_4_improves(a, a)

    def test_requires_equal_sizes(self):
        with pytest.raises(ValueError):
            corollary_3_4_improves(
                PartitionGeometry((4, 1, 1, 1)),
                PartitionGeometry((2, 1, 1, 1)),
            )

    def test_corollary_agrees_with_bandwidth(self):
        """Corollary 3.4's prediction matches the computed bandwidths."""
        from repro.allocation.enumeration import enumerate_geometries

        for size in (8, 16, 24, 48):
            geos = enumerate_geometries(MIRA, size)
            for a in geos:
                for b in geos:
                    if corollary_3_4_improves(a, b):
                        assert (
                            b.normalized_bisection_bandwidth
                            > a.normalized_bisection_bandwidth
                        )
