"""Regression tests for the float-equality fixes (staticcheck float-eq).

Four call sites used ``==``/``!=`` on float-typed expressions; each got
a semantically-reviewed fix rather than a blanket suppression.  These
tests pin the new behavior, in particular the one *intentional*
semantics change: a path over an epsilon-small surviving capacity now
counts as severed in the simmpi engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.machinedesign import (
    MachineDesignRow,
    peak_speedup_over_baseline,
)
from repro.machines.bgq import BlueGeneQMachine
from repro.simmpi.engine import _path_severed


class TestPathSevered:
    """simmpi.engine: `caps[path].min() == 0.0` became an _EPS guard."""

    def test_exact_zero_is_severed(self):
        caps = np.array([1.0, 0.0, 1.0])
        assert _path_severed(caps, np.array([0, 1, 2])) is True

    def test_epsilon_dust_is_severed(self):
        # The behavior change: a link whose capacity decayed to 1e-15
        # through repeated fault scaling used to count as alive and
        # stall progress at a ~1e-15 rate; now it counts as failed.
        caps = np.array([1.0, 1e-15, 1.0])
        assert _path_severed(caps, np.array([0, 1, 2])) is True

    def test_healthy_path_is_not_severed(self):
        caps = np.array([0.5, 2.0, 1.0])
        assert _path_severed(caps, np.array([0, 1, 2])) is False

    def test_only_links_on_the_path_matter(self):
        caps = np.array([0.0, 1.0, 1.0])
        assert _path_severed(caps, np.array([1, 2])) is False


class TestPeakSpeedupSentinel:
    """machinedesign: float-zero sentinel became None."""

    @staticmethod
    def row(size, **bw):
        return MachineDesignRow(
            num_midplanes=size,
            bandwidths=bw,
            geometries={name: None for name in bw},
        )

    def test_no_common_sizes_raises(self):
        rows = [
            self.row(4, a=128, b=None),
            self.row(6, a=None, b=256),
        ]
        with pytest.raises(ValueError, match="no common sizes"):
            peak_speedup_over_baseline(rows, "a", "b")

    def test_tiny_ratio_is_a_result_not_a_sentinel(self):
        # With the old `best == 0.0` sentinel a denormal-small ratio
        # was indistinguishable from "nothing compared".
        rows = [self.row(4, a=10**40, b=1)]
        assert peak_speedup_over_baseline(rows, "a", "b") == (
            pytest.approx(1e-40)
        )

    def test_normal_comparison(self):
        rows = [
            self.row(4, a=100, b=150),
            self.row(8, a=100, b=250),
        ]
        assert peak_speedup_over_baseline(rows, "a", "b") == (
            pytest.approx(2.5)
        )


class TestBisectionBandwidthScaling:
    """bgq: `link_bandwidth == 1.0` fast path became a None sentinel."""

    def test_default_is_the_papers_integer(self):
        m = BlueGeneQMachine("t", (2, 2, 4, 2))
        bw = m.bisection_bandwidth()
        assert isinstance(bw, int)

    def test_unit_bandwidth_bit_identical_to_unscaled(self):
        m = BlueGeneQMachine("t", (2, 2, 4, 2))
        assert m.bisection_bandwidth(1.0) == m.bisection_bandwidth()

    def test_scaling_is_linear(self):
        m = BlueGeneQMachine("t", (2, 2, 4, 2))
        base = m.bisection_bandwidth()
        assert m.bisection_bandwidth(2.0) == pytest.approx(2.0 * base)
