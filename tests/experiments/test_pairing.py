"""Unit tests for Experiment A (bisection pairing)."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.experiments.pairing import (
    PairingParameters,
    PairingResult,
    fluid_bisection_bandwidth,
    pairing_path_matrix,
    run_pairing,
)

# Small geometries keep the fluid simulation fast in unit tests; the
# benchmark harnesses run the full paper sizes.
FAST = PairingParameters()


class TestParameters:
    def test_paper_defaults(self):
        p = PairingParameters()
        assert p.rounds == 26
        assert p.chunks_per_round == 16
        assert p.chunk_gb == 0.1342
        assert p.link_bandwidth == 2.0

    def test_volume_per_pair(self):
        p = PairingParameters()
        assert p.volume_per_pair_gb == pytest.approx(26 * 16 * 0.1342)

    def test_validation(self):
        with pytest.raises(ValueError):
            PairingParameters(rounds=0)
        with pytest.raises(ValueError):
            PairingParameters(chunk_gb=-1.0)


class TestSingleMidplane:
    def test_one_midplane_run(self):
        res = run_pairing(PartitionGeometry((1, 1, 1, 1)))
        assert res.num_flows == 512
        assert res.time_seconds > 0

    def test_symmetric_rates(self):
        res = run_pairing(PartitionGeometry((1, 1, 1, 1)))
        assert res.min_rate == pytest.approx(res.max_rate)


class TestGeometryComparison:
    def test_4mp_ratio_is_two(self, mira_4mp_current, mira_4mp_proposed):
        """The paper's headline: x2 between 4x1x1x1 and 2x2x1x1."""
        worse = run_pairing(mira_4mp_current)
        better = run_pairing(mira_4mp_proposed)
        assert worse.time_seconds / better.time_seconds == pytest.approx(
            2.0, rel=1e-6
        )

    def test_equal_bandwidth_per_node_equal_time(self):
        """Mira's current 4- and 8-midplane partitions have the same
        per-node bisection bandwidth (256/2048 = 512/4096), producing
        the flat region of Figure 3."""
        t4 = run_pairing(PartitionGeometry((4, 1, 1, 1))).time_seconds
        t8 = run_pairing(PartitionGeometry((4, 2, 1, 1))).time_seconds
        assert t4 == pytest.approx(t8)

    def test_absolute_time_matches_link_counting(self, mira_4mp_proposed):
        """(2,2,1,1): 8-ring antipodal flows, parity-split -> 2 flows
        per + link -> 1.0 GB/s each -> volume / 1.0."""
        res = run_pairing(mira_4mp_proposed)
        expected = PairingParameters().volume_per_pair_gb / 1.0
        assert res.time_seconds == pytest.approx(expected)

    def test_custom_rounds_scale_linearly(self, mira_4mp_proposed):
        t26 = run_pairing(mira_4mp_proposed).time_seconds
        t13 = run_pairing(
            mira_4mp_proposed, PairingParameters(rounds=13)
        ).time_seconds
        assert t26 == pytest.approx(2 * t13)

    def test_result_fields(self, mira_4mp_proposed):
        res = run_pairing(mira_4mp_proposed)
        assert isinstance(res, PairingResult)
        assert res.num_midplanes == 4
        assert res.num_flows == 2048
        assert res.geometry is mira_4mp_proposed


class TestVectorScalarParity:
    """The batch-routed path (default) and the scalar oracle
    (``REPRO_VECTOR=0``) must produce bit-identical results."""

    GEOMETRIES = [
        PartitionGeometry((1, 1, 1, 1)),
        PartitionGeometry((2, 2, 1, 1)),
        PartitionGeometry((4, 1, 1, 1)),
    ]

    @pytest.mark.parametrize(
        "geometry", GEOMETRIES, ids=lambda g: str(g.dims)
    )
    def test_run_pairing_bit_identical(self, monkeypatch, geometry):
        vector = run_pairing(geometry)
        monkeypatch.setenv("REPRO_VECTOR", "0")
        scalar = run_pairing(geometry)
        assert vector == scalar  # dataclass equality: exact floats

    def test_path_matrix_equals_scalar_routes(self):
        from repro.netsim.network import LinkNetwork
        from repro.netsim.routing import dimension_ordered_route
        from repro.netsim.traffic import bisection_pairing
        from repro.topology.torus import Torus

        torus = Torus((4, 4, 2))
        net = LinkNetwork(torus)
        pm = pairing_path_matrix(torus)
        scalar = [
            net.path_to_links(dimension_ordered_route(torus, s, d))
            for s, d in bisection_pairing(torus)
        ]
        assert len(pm) == len(scalar)
        for got, want in zip(pm, scalar):
            assert got.tolist() == want.tolist()


class TestFluidBisectionBandwidth:
    @pytest.mark.parametrize(
        "dims",
        [(1, 1, 1, 1), (2, 2, 1, 1), (4, 1, 1, 1), (2, 2, 2, 2)],
    )
    def test_matches_static_cut_arithmetic(self, dims):
        geometry = PartitionGeometry(dims)
        assert fluid_bisection_bandwidth(geometry) == pytest.approx(
            float(geometry.normalized_bisection_bandwidth), rel=1e-12
        )

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            fluid_bisection_bandwidth(
                PartitionGeometry((1, 1, 1, 1)), link_bandwidth=0.0
            )
