"""Unit tests for Experiment B (CAPS matmul) — scaled-down instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.experiments.matmul import (
    MatmulResult,
    run_caps_on_geometry,
    step_traffic_matrix,
)

# One midplane (512 nodes) with 343 ranks: small enough for unit tests.
SMALL = dict(num_ranks=343, matrix_dim=2744, max_cores=4)


class TestStepTrafficMatrix:
    def test_inter_node_pairs_only(self):
        node_of_rank = np.array([0, 0, 1, 1, 2, 2, 3], dtype=np.int64)
        src, dst, cnt = step_traffic_matrix(
            7, stride=1, group_size=7, node_of_rank=node_of_rank
        )
        assert np.all(src != dst)

    def test_counts_total(self):
        # 4 ranks in one 4-group on 4 distinct nodes: 12 ordered pairs.
        node_of_rank = np.arange(4, dtype=np.int64)
        src, dst, cnt = step_traffic_matrix(
            4, stride=1, group_size=4, node_of_rank=node_of_rank
        )
        assert cnt.sum() == 12

    def test_round_offset_selects_single_shift(self):
        node_of_rank = np.arange(4, dtype=np.int64)
        src, dst, cnt = step_traffic_matrix(
            4, stride=1, group_size=4, node_of_rank=node_of_rank,
            round_offset=1,
        )
        assert cnt.sum() == 4
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert pairs == {(0, 1), (1, 2), (2, 3), (3, 0)}

    def test_round_offset_validation(self):
        node_of_rank = np.arange(4, dtype=np.int64)
        with pytest.raises(ValueError):
            step_traffic_matrix(
                4, 1, 4, node_of_rank, round_offset=4
            )

    def test_all_intranode_empty(self):
        node_of_rank = np.zeros(7, dtype=np.int64)
        src, dst, cnt = step_traffic_matrix(7, 1, 7, node_of_rank)
        assert len(src) == 0


class TestRunCaps:
    def test_result_structure(self):
        res = run_caps_on_geometry(PartitionGeometry((1, 1, 1, 1)), **SMALL)
        assert isinstance(res, MatmulResult)
        assert res.communication_time > 0
        assert res.computation_time > 0
        assert len(res.step_times) == 3  # 7^3 ranks -> 3 BFS steps
        assert res.total_time == pytest.approx(
            res.communication_time + res.computation_time
        )

    def test_comm_time_is_sum_of_steps(self):
        res = run_caps_on_geometry(PartitionGeometry((1, 1, 1, 1)), **SMALL)
        assert res.communication_time == pytest.approx(sum(res.step_times))

    def test_core_limit_enforced(self):
        with pytest.raises(ValueError):
            run_caps_on_geometry(
                PartitionGeometry((1, 1, 1, 1)),
                num_ranks=2048, matrix_dim=2744, max_cores=2,
            )

    def test_computation_geometry_independent(self):
        a = run_caps_on_geometry(PartitionGeometry((2, 1, 1, 1)),
                                 num_ranks=2401, matrix_dim=9408)
        b = run_caps_on_geometry(PartitionGeometry((2, 1, 1, 1)),
                                 num_ranks=2401, matrix_dim=9408,
                                 node_order="abcdet")
        assert a.computation_time == b.computation_time

    def test_comm_slowdown_multiplies(self):
        base = run_caps_on_geometry(
            PartitionGeometry((1, 1, 1, 1)), **SMALL
        )
        slowed = run_caps_on_geometry(
            PartitionGeometry((1, 1, 1, 1)), comm_slowdown=1.5, **SMALL
        )
        assert slowed.communication_time == pytest.approx(
            1.5 * base.communication_time
        )
        assert slowed.computation_time == base.computation_time

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            run_caps_on_geometry(
                PartitionGeometry((1, 1, 1, 1)), schedule="magic", **SMALL
            )

    def test_superposition_not_slower_than_rounds(self):
        """Overlapping all partners can only reduce the bottleneck."""
        geo = PartitionGeometry((1, 1, 1, 1))
        rounds = run_caps_on_geometry(geo, schedule="rounds", **SMALL)
        overlap = run_caps_on_geometry(geo, schedule="superposition", **SMALL)
        assert (
            overlap.communication_time
            <= rounds.communication_time + 1e-12
        )

    def test_deterministic(self):
        geo = PartitionGeometry((2, 1, 1, 1))
        a = run_caps_on_geometry(geo, num_ranks=2401, matrix_dim=9408)
        b = run_caps_on_geometry(geo, num_ranks=2401, matrix_dim=9408)
        assert a.communication_time == b.communication_time


class TestGeometrySensitivity:
    def test_proposed_beats_current_4mp_scaled(self):
        """Geometry effect visible even at the scaled-down test size."""
        current = run_caps_on_geometry(
            PartitionGeometry((4, 1, 1, 1)),
            num_ranks=4802, matrix_dim=9408, max_cores=4,
        )
        proposed = run_caps_on_geometry(
            PartitionGeometry((2, 2, 1, 1)),
            num_ranks=4802, matrix_dim=9408, max_cores=4,
        )
        assert (
            proposed.communication_time < current.communication_time
        )
