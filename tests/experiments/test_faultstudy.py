"""Tests for the degraded-bisection study."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.experiments.faultstudy import (
    default_geometry_for_machine,
    degraded_bisection_study,
    surviving_bisection_bandwidth,
)
from repro.faults import FaultSet, midplane_drain, random_degradations
from repro.machines.catalog import JUQUEEN, MIRA
from repro.topology.torus import Torus


class TestSurvivingBisection:
    def test_healthy_equals_bisection_width(self):
        for dims in [(4, 4), (8,), (2, 4, 6)]:
            torus = Torus(dims)
            assert surviving_bisection_bandwidth(
                torus, FaultSet()
            ) == pytest.approx(torus.bisection_width())

    def test_crossing_failure_reduces_cut(self):
        torus = Torus((8,))
        healthy = surviving_bisection_bandwidth(torus, FaultSet())
        # (3,)-(4,) crosses the half cut of an 8-ring.
        cut = surviving_bisection_bandwidth(
            torus, FaultSet(failed_links=[((3,), (4,))])
        )
        assert cut == pytest.approx(healthy - 1.0)

    def test_non_crossing_failure_leaves_cut(self):
        torus = Torus((8,))
        healthy = surviving_bisection_bandwidth(torus, FaultSet())
        cut = surviving_bisection_bandwidth(
            torus, FaultSet(failed_links=[((1,), (2,))])
        )
        assert cut == pytest.approx(healthy)

    def test_degraded_crossing_link_scales(self):
        torus = Torus((8,))
        healthy = surviving_bisection_bandwidth(torus, FaultSet())
        cut = surviving_bisection_bandwidth(
            torus, FaultSet(degraded_links={((3,), (4,)): 0.25})
        )
        assert cut == pytest.approx(healthy - 0.75)

    def test_drained_node_loses_crossing_edges(self):
        torus = Torus((4, 4))
        healthy = surviving_bisection_bandwidth(torus, FaultSet())
        # Draining the coord-1 slab of dim 0 removes its dim-0 crossing
        # edges from the (0/1 | 2/3) cut: 4 links (1,y)-(2,y)... but the
        # best cut may move to the other dimension, so just check it
        # shrinks and stays non-negative.
        cut = surviving_bisection_bandwidth(
            torus, midplane_drain(torus, 0, 1)
        )
        assert 0.0 <= cut < healthy

    def test_never_negative(self):
        torus = Torus((2, 2))
        everything = FaultSet(
            failed_links=[(u, v) for u, v, _ in torus.edges()]
        )
        assert surviving_bisection_bandwidth(torus, everything) == 0.0

    def test_odd_torus_raises(self):
        with pytest.raises(ValueError, match="even"):
            surviving_bisection_bandwidth(Torus((3, 5)), FaultSet())


class TestDefaultGeometry:
    def test_mira_uses_predefined_list(self):
        geo = default_geometry_for_machine(MIRA, 16)
        assert geo == PartitionGeometry((4, 4, 1, 1))

    def test_juqueen_uses_worst_cuboid(self):
        geo = default_geometry_for_machine(JUQUEEN, 8)
        assert geo.num_midplanes == 8


class TestDegradedBisectionStudy:
    def test_healthy_row_matches_paper_tables(self):
        rows = degraded_bisection_study(
            MIRA, 16, max_failures=2, trials=3, seed=0
        )
        r0 = rows[0]
        assert r0.failures == 0 and r0.trials == 1
        # Table 1: default 4x4x1x1 has bisection 1024, optimal 2x2x2x2
        # has 2048 (node-level link counts x BG/Q weights).
        assert r0.default_mean_bw == pytest.approx(1024.0)
        assert r0.optimal_mean_bw == pytest.approx(2048.0)
        assert r0.ranking_stable_fraction == 1.0

    def test_rows_cover_all_failure_counts(self):
        rows = degraded_bisection_study(
            MIRA, 16, max_failures=3, trials=2, seed=0
        )
        assert [r.failures for r in rows] == [0, 1, 2, 3]
        assert all(r.trials == 2 for r in rows[1:])

    def test_deterministic(self):
        a = degraded_bisection_study(MIRA, 16, max_failures=2, trials=4, seed=5)
        b = degraded_bisection_study(MIRA, 16, max_failures=2, trials=4, seed=5)
        assert a == b

    def test_means_bounded_by_healthy_and_min(self):
        rows = degraded_bisection_study(
            MIRA, 16, max_failures=4, trials=5, seed=1
        )
        for r in rows:
            assert r.default_min_bw <= r.default_mean_bw <= 1024.0
            assert r.optimal_min_bw <= r.optimal_mean_bw <= 2048.0
            # k failures can cost at most 2k weighted links off any cut.
            assert r.default_min_bw >= 1024.0 - 2.0 * r.failures
            assert r.optimal_min_bw >= 2048.0 - 2.0 * r.failures

    def test_mira_ranking_stable_at_small_k(self):
        rows = degraded_bisection_study(
            MIRA, 16, max_failures=4, trials=10, seed=0
        )
        assert all(r.ranking_stable_fraction == 1.0 for r in rows)

    def test_fluid_check_passes_and_rows_unchanged(self):
        plain = degraded_bisection_study(
            MIRA, 4, max_failures=1, trials=2, seed=0
        )
        checked = degraded_bisection_study(
            MIRA, 4, max_failures=1, trials=2, seed=0, fluid_check=True
        )
        assert checked == plain

    def test_fluid_check_detects_mismatch(self, monkeypatch):
        import repro.experiments.faultstudy as faultstudy_mod
        import repro.experiments.pairing as pairing_mod

        monkeypatch.setattr(
            pairing_mod, "fluid_bisection_bandwidth", lambda g: -1.0
        )
        with pytest.raises(RuntimeError, match="fluid cross-check"):
            faultstudy_mod.degraded_bisection_study(
                MIRA, 4, max_failures=0, trials=1, fluid_check=True
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            degraded_bisection_study(MIRA, 0)
        with pytest.raises(ValueError):
            degraded_bisection_study(MIRA, 16, trials=0)
        with pytest.raises(ValueError):
            degraded_bisection_study(MIRA, 16, max_failures=-1)


def test_random_degradations_integrate_with_study_metric():
    torus = Torus((4, 4))
    faults = random_degradations(torus, 3, factor=0.5, seed=2)
    bw = surviving_bisection_bandwidth(torus, faults)
    healthy = surviving_bisection_bandwidth(torus, FaultSet())
    assert 0.0 < bw <= healthy


class TestFluidFaultSweep:
    """Flow-level fault scenarios: degraded rows, never aborts."""

    GEO = PartitionGeometry((1, 1, 1, 1))

    def test_healthy_row_equals_fluid_bisection(self):
        from repro.experiments.faultstudy import fluid_fault_sweep
        from repro.experiments.pairing import fluid_bisection_bandwidth

        rows = fluid_fault_sweep(self.GEO, max_failures=1, trials=1)
        assert rows[0].failures == 0
        assert rows[0].degraded is None
        assert rows[0].bandwidth == pytest.approx(
            fluid_bisection_bandwidth(self.GEO)
        )

    def test_grid_shape_and_seed_pairing(self):
        from repro.experiments.faultstudy import fluid_fault_sweep

        rows = fluid_fault_sweep(
            self.GEO, max_failures=2, trials=3, seed=5
        )
        assert [(r.failures, r.trial) for r in rows] == [
            (0, 0), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2),
        ]
        # Same seed arithmetic as degraded_bisection_study.
        assert [r.seed for r in rows] == [
            5, 1005, 1006, 1007, 2005, 2006, 2007,
        ]

    def test_deterministic_and_bounded(self):
        from repro.experiments.faultstudy import fluid_fault_sweep

        a = fluid_fault_sweep(self.GEO, max_failures=2, trials=2, seed=1)
        b = fluid_fault_sweep(self.GEO, max_failures=2, trials=2, seed=1)
        assert a == b
        healthy = a[0].bandwidth
        assert all(0.0 < r.bandwidth <= healthy for r in a)

    def test_disconnecting_scenario_degrades_not_raises(self, monkeypatch):
        """Isolate a vertex: its flows land in a DegradedResult row."""
        from repro.experiments import faultstudy as fs

        torus = self.GEO.bgq_network()
        v = next(iter(torus.vertices()))
        incident = [(u, w) for u, w, _ in torus.edges()
                    if u == v or w == v]
        isolating = FaultSet(failed_links=incident)
        monkeypatch.setattr(
            fs, "random_link_failures",
            lambda topo, k, seed=0, edges=None:
                isolating if k > 0 else FaultSet(),
        )
        rows = fs.fluid_fault_sweep(self.GEO, max_failures=1, trials=1)
        assert rows[0].degraded is None
        hit = rows[1]
        assert hit.degraded is not None
        # Both the isolated vertex's flow and its antipode's flow died.
        assert hit.degraded.disconnected_flows == 2
        assert v in hit.degraded.witness
        assert hit.degraded.scenario == (1, 0)
        assert hit.degraded.faults is isolating
        # The surviving flows still contribute bandwidth.
        assert 0.0 < hit.bandwidth < rows[0].bandwidth

    def test_checkpoint_resume_matches(self, tmp_path):
        from repro.experiments.faultstudy import fluid_fault_sweep

        ckpt = tmp_path / "fluid.jsonl"
        first = fluid_fault_sweep(
            self.GEO, max_failures=1, trials=2, checkpoint=ckpt
        )
        second = fluid_fault_sweep(
            self.GEO, max_failures=1, trials=2, checkpoint=ckpt
        )
        assert first == second

    def test_validation(self):
        from repro.experiments.faultstudy import fluid_fault_sweep

        with pytest.raises(ValueError):
            fluid_fault_sweep(self.GEO, max_failures=-1)
        with pytest.raises(ValueError):
            fluid_fault_sweep(self.GEO, trials=0)
