"""Unit tests for Experiment C (strong scaling)."""

from __future__ import annotations

import pytest

from repro.experiments.strongscaling import (
    STRONG_SCALING_MATRIX_DIM,
    STRONG_SCALING_TABLE4,
    run_strong_scaling,
)


@pytest.fixture(scope="module")
def result():
    return run_strong_scaling()


class TestTable4Constants:
    def test_matrix_dim(self):
        assert STRONG_SCALING_MATRIX_DIM == 9408

    def test_rows(self):
        assert [(r[0], r[1], r[2]) for r in STRONG_SCALING_TABLE4] == [
            (2, 2401, 4), (4, 4802, 4), (8, 9604, 4),
        ]

    def test_two_midplane_row_has_unique_geometry(self):
        row = STRONG_SCALING_TABLE4[0]
        assert row[3] == row[4] == (2, 1, 1, 1)


class TestCurves:
    def test_common_starting_point(self, result):
        assert result.current[0].communication_time == pytest.approx(
            result.proposed[0].communication_time
        )

    def test_both_curves_decrease(self, result):
        for curve in (result.current, result.proposed):
            times = [p.communication_time for p in curve]
            assert times == sorted(times, reverse=True)

    def test_proposed_scales_better(self, result):
        """The paper's point: proposed-geometry scaling beats current."""
        assert result.speedup("proposed") > result.speedup("current")

    def test_proposed_not_slower_at_any_size(self, result):
        for cur, prop in zip(result.current, result.proposed):
            assert (
                prop.communication_time <= cur.communication_time + 1e-12
            )

    def test_spill_penalty_only_at_2mp(self, result):
        assert result.current[0].spill_penalty > 1.0
        assert all(p.spill_penalty == 1.0 for p in result.current[1:])
        assert all(p.spill_penalty == 1.0 for p in result.proposed[1:])

    def test_cache_model_toggle(self):
        with_cache = run_strong_scaling()
        without = run_strong_scaling(apply_cache_model=False)
        assert (
            with_cache.current[0].communication_time
            > without.current[0].communication_time
        )
        # Larger sizes are unaffected.
        assert with_cache.current[2].communication_time == pytest.approx(
            without.current[2].communication_time
        )

    def test_computation_scales_with_ranks(self, result):
        comps = [p.computation_time for p in result.current]
        assert comps[0] == pytest.approx(2 * comps[1], rel=1e-6)
        assert comps[1] == pytest.approx(2 * comps[2], rel=1e-6)
