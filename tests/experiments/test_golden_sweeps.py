"""Golden-value regression tests for the sweep drivers' exact outputs.

The stacked rewrite moves ``fluid_fault_sweep`` and the design search's
fluid cross-check onto block-dispatched vector paths whose contract is
*bit-for-bit* agreement with the scalar oracle.  These fixtures pin the
drivers' full output rows — ordering, numbering, and float values — so
a future change that silently reorders rows, renumbers trials, or
perturbs a rate by one ulp fails loudly.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden_sweeps.py \
        --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.experiments.designsearch import design_search, fluid_check
from repro.experiments.faultstudy import fluid_fault_sweep
from repro.machines import JUQUEEN

GOLDEN_DIR = Path(__file__).parent / "golden"


def _fault_row_to_dict(row) -> dict:
    rec = {
        "failures": row.failures,
        "trial": row.trial,
        "seed": row.seed,
        "bandwidth": row.bandwidth,
    }
    if row.degraded is None:
        rec["degraded"] = None
    else:
        d = row.degraded
        rec["degraded"] = {
            "scenario": list(d.scenario),
            "witness": [list(v) for v in d.witness],
            "disconnected_flows": d.disconnected_flows,
            "failed_links": sorted(
                [list(u), list(v)] for u, v in d.faults.failed_links
            ),
        }
    return rec


def _snapshot_fluid_fault_sweep() -> list[dict]:
    rows = fluid_fault_sweep(
        PartitionGeometry((2, 2, 1, 1)),
        max_failures=5,
        trials=4,
        seed=11,
        jobs=1,
    )
    return [_fault_row_to_dict(r) for r in rows]


def _snapshot_fluid_check_top() -> list[dict]:
    candidates = design_search(10, JUQUEEN, sizes=[2, 4, 8], jobs=1)
    return fluid_check(candidates[:4])


CASES = [
    ("fluid_fault_sweep.json", _snapshot_fluid_fault_sweep),
    ("designsearch_fluid_check.json", _snapshot_fluid_check_top),
]


@pytest.mark.parametrize("filename,snapshot", CASES)
def test_golden_sweep(filename, snapshot, update_golden):
    path = GOLDEN_DIR / filename
    actual = snapshot()
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden fixture {path} missing; run with --update-golden to "
        "create it"
    )
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"{filename} drifted from the golden fixture; if the change is "
        "intentional, rerun with --update-golden"
    )


class TestGoldenSanity:
    """The fixtures must encode the sweep semantics we rely on."""

    def test_fault_sweep_shape(self):
        rows = json.loads(
            (GOLDEN_DIR / "fluid_fault_sweep.json").read_text()
        )
        # 1 healthy row + 4 trials for each k = 1..5.
        assert len(rows) == 1 + 5 * 4
        assert rows[0]["failures"] == 0
        assert rows[0]["bandwidth"] > 0
        # Bandwidth never improves with more failures at matched trials.
        healthy = rows[0]["bandwidth"]
        assert all(r["bandwidth"] <= healthy + 1e-12 for r in rows)

    def test_fluid_check_agrees_with_cut_arithmetic(self):
        recs = json.loads(
            (GOLDEN_DIR / "designsearch_fluid_check.json").read_text()
        )
        assert recs, "fluid-check fixture is empty"
        for r in recs:
            assert r["fluid_bw"] == pytest.approx(
                r["static_bw"], rel=1e-9
            )
