"""Unit tests for the future-work kernel experiments (scaled down)."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.experiments.futurekernels import (
    KernelRun,
    run_fft_transpose,
    run_nbody_sweep,
)

ONE_MP = PartitionGeometry((1, 1, 1, 1))  # 512 nodes


class TestFft:
    def test_result_structure(self):
        res = run_fft_transpose(ONE_MP, n=2**20)
        assert isinstance(res, KernelRun)
        assert res.kernel == "fft-transpose"
        assert res.communication_time > 0
        assert res.computation_time > 0
        assert 0 < res.comm_fraction < 1

    def test_comm_scales_linearly_with_n(self):
        a = run_fft_transpose(ONE_MP, n=2**20)
        b = run_fft_transpose(ONE_MP, n=2**21)
        assert b.communication_time == pytest.approx(
            2 * a.communication_time, rel=1e-6
        )

    def test_sampling_consistent_with_exact(self):
        """Sampled estimate close to the exact all-round sum."""
        exact = run_fft_transpose(ONE_MP, n=2**20,
                                  max_sampled_rounds=10**6)
        sampled = run_fft_transpose(ONE_MP, n=2**20,
                                    max_sampled_rounds=64)
        assert sampled.communication_time == pytest.approx(
            exact.communication_time, rel=0.1
        )

    def test_geometry_sensitivity_at_4mp_scale(self):
        worse = run_fft_transpose(PartitionGeometry((2, 1, 1, 1)), n=2**22)
        better = run_fft_transpose(PartitionGeometry((1, 1, 1, 1)), n=2**22)
        # Different sizes — just check both run; the benchmark harness
        # compares equal sizes at full scale.
        assert worse.communication_time > 0
        assert better.communication_time > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_fft_transpose(ONE_MP, n=0)


class TestNbody:
    def test_walk_ring_geometry_insensitive(self):
        a = run_nbody_sweep(PartitionGeometry((4, 1, 1, 1)), 100_000)
        b = run_nbody_sweep(PartitionGeometry((2, 2, 1, 1)), 100_000)
        assert a.communication_time == pytest.approx(
            b.communication_time
        )

    def test_random_ring_slower_than_walk(self):
        walk = run_nbody_sweep(ONE_MP, 100_000, ring_order="walk")
        rand = run_nbody_sweep(ONE_MP, 100_000, ring_order="random")
        assert rand.communication_time > walk.communication_time

    def test_random_ring_seeded(self):
        a = run_nbody_sweep(ONE_MP, 100_000, ring_order="random", seed=5)
        b = run_nbody_sweep(ONE_MP, 100_000, ring_order="random", seed=5)
        assert a.communication_time == b.communication_time

    def test_compute_dominates_at_large_body_count(self):
        res = run_nbody_sweep(ONE_MP, 1_000_000)
        assert res.computation_time > res.communication_time

    def test_invalid_ring_order(self):
        with pytest.raises(ValueError):
            run_nbody_sweep(ONE_MP, 1000, ring_order="spiral")

    def test_comm_scales_with_bodies(self):
        a = run_nbody_sweep(ONE_MP, 100_000)
        b = run_nbody_sweep(ONE_MP, 200_000)
        assert b.communication_time == pytest.approx(
            2 * a.communication_time, rel=1e-6
        )
