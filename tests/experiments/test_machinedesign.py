"""Unit tests for the machine-design study (Table 5 / Figure 7)."""

from __future__ import annotations

import pytest

from repro.experiments.machinedesign import (
    compare_machines,
    is_constructible_within,
    peak_speedup_nearest_size,
    peak_speedup_over_baseline,
)
from repro.machines.catalog import JUQUEEN, JUQUEEN_48, JUQUEEN_54, MIRA


@pytest.fixture(scope="module")
def rows():
    return compare_machines([JUQUEEN, JUQUEEN_48, JUQUEEN_54])


class TestComparison:
    def test_sizes_are_union(self, rows):
        sizes = [r.num_midplanes for r in rows]
        assert 5 in sizes     # JUQUEEN-only
        assert 9 in sizes     # hypothetical-only
        assert 27 in sizes    # JUQUEEN-54-only
        assert sizes == sorted(sizes)

    def test_hypotheticals_never_worse_at_common_sizes(self, rows):
        """Table 5's claim: J-48 / J-54 match or beat JUQUEEN wherever
        both can allocate."""
        for row in rows:
            j = row.bandwidths["JUQUEEN"]
            for other in ("JUQUEEN-48", "JUQUEEN-54"):
                o = row.bandwidths[other]
                if j is not None and o is not None:
                    assert o >= j, (row.num_midplanes, other)

    def test_strict_improvements_at_largest_sizes(self, rows):
        by_size = {r.num_midplanes: r for r in rows}
        assert by_size[48].bandwidths["JUQUEEN-48"] == 3072
        assert by_size[48].bandwidths["JUQUEEN"] == 2048
        assert by_size[24].bandwidths["JUQUEEN-54"] == 2048
        assert by_size[24].bandwidths["JUQUEEN"] == 2048

    def test_paper_peak_speedups(self, rows):
        """Up to x1.5 for JUQUEEN-48 (same-size, 48 midplanes) and x2+
        for JUQUEEN-54 (nearest-size: 54 vs JUQUEEN's 56)."""
        assert peak_speedup_over_baseline(
            rows, "JUQUEEN", "JUQUEEN-48"
        ) == pytest.approx(1.5)
        # At every common size JUQUEEN-54 merely matches JUQUEEN...
        assert peak_speedup_over_baseline(
            rows, "JUQUEEN", "JUQUEEN-54"
        ) == pytest.approx(1.0)
        # ...its advantage shows at sizes JUQUEEN cannot form.
        assert peak_speedup_nearest_size(
            rows, "JUQUEEN", "JUQUEEN-54"
        ) >= 2.0
        assert peak_speedup_nearest_size(
            rows, "JUQUEEN", "JUQUEEN-48"
        ) >= 1.5

    def test_missing_sizes_are_none(self, rows):
        by_size = {r.num_midplanes: r for r in rows}
        assert by_size[5].bandwidths["JUQUEEN-48"] is None
        assert by_size[27].bandwidths["JUQUEEN"] is None

    def test_geometries_reported(self, rows):
        by_size = {r.num_midplanes: r for r in rows}
        assert by_size[54].geometries["JUQUEEN-54"] == (3, 3, 3, 2)

    def test_custom_sizes(self):
        rows = compare_machines([JUQUEEN], sizes=[4, 8])
        assert [r.num_midplanes for r in rows] == [4, 8]

    def test_empty_machine_list(self):
        with pytest.raises(ValueError):
            compare_machines([])

    def test_no_common_sizes_raises(self, rows):
        with pytest.raises(ValueError):
            peak_speedup_over_baseline(rows, "JUQUEEN", "nonexistent")


class TestConstructibility:
    def test_hypotheticals_fit_mira(self):
        """The paper's feasibility argument."""
        assert is_constructible_within(JUQUEEN_48, MIRA)
        assert is_constructible_within(JUQUEEN_54, MIRA)

    def test_juqueen_does_not_fit_mira(self):
        assert not is_constructible_within(JUQUEEN, MIRA)
