"""Unit tests for the machine-design search."""

from __future__ import annotations

import pytest

from repro.experiments.designsearch import (
    DesignCandidate,
    design_search,
    score_machine,
)
from repro.machines.catalog import JUQUEEN, JUQUEEN_48, JUQUEEN_54


@pytest.fixture(scope="module")
def search():
    return design_search(56, JUQUEEN)


class TestScoring:
    def test_score_machine_matches_optimizer(self):
        scores = score_machine(JUQUEEN, [4, 8, 16])
        assert scores == {4: 512, 8: 1024, 16: 2048}

    def test_unallocatable_size_scores_zero(self):
        scores = score_machine(JUQUEEN, [11])
        assert scores[11] == 0


class TestSearch:
    def test_rediscovers_juqueen_48_as_top_design(self, search):
        """The paper's hand-picked JUQUEEN-48 is the best dominating
        candidate: it matches JUQUEEN at every common size and strictly
        beats it at 48 midplanes — with 8 fewer midplanes."""
        top = search[0]
        assert top.machine.midplane_dims == JUQUEEN_48.midplane_dims
        assert top.dominated_baseline
        assert top.wins >= 1

    def test_juqueen_54_among_dominating_candidates(self, search):
        dominating = {
            c.machine.midplane_dims
            for c in search
            if c.dominated_baseline
        }
        assert JUQUEEN_54.midplane_dims in dominating

    def test_baseline_excluded(self, search):
        assert all(
            c.machine.midplane_dims != JUQUEEN.midplane_dims
            for c in search
        )

    def test_dominating_candidates_sort_first(self, search):
        flags = [c.dominated_baseline for c in search]
        # Once False appears, no later True.
        if False in flags:
            first_false = flags.index(False)
            assert not any(flags[first_false:])

    def test_elongated_machines_do_not_dominate(self, search):
        by_dims = {c.machine.midplane_dims: c for c in search}
        # A 56-midplane ring machine can't even match JUQUEEN.
        ring = by_dims.get((56, 1, 1, 1))
        assert ring is not None
        assert not ring.dominated_baseline

    def test_total_bandwidth_property(self, search):
        c = search[0]
        assert c.total_bandwidth == sum(c.bandwidths.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            design_search(4, JUQUEEN, min_midplanes=8)

    def test_custom_sizes(self):
        cands = design_search(8, JUQUEEN, sizes=[4, 8])
        assert all(set(c.bandwidths) == {4, 8} for c in cands)


class TestFluidCheck:
    def test_fluid_check_passes_and_ranking_unchanged(self):
        plain = design_search(6, JUQUEEN, sizes=[2, 4])
        checked = design_search(
            6, JUQUEEN, sizes=[2, 4], fluid_check_top=3
        )
        assert checked == plain

    def test_fluid_check_detects_mismatch(self, monkeypatch):
        import repro.experiments.pairing as pairing_mod

        monkeypatch.setattr(
            pairing_mod, "fluid_bisection_bandwidth", lambda g: -1.0
        )
        with pytest.raises(RuntimeError, match="fluid cross-check"):
            design_search(6, JUQUEEN, sizes=[2, 4], fluid_check_top=1)
