"""Tests for the CAPS experiment's modelling options at reduced scale."""

from __future__ import annotations

import pytest

from repro.allocation.geometry import PartitionGeometry
from repro.experiments.matmul import run_caps_on_geometry

GEO = PartitionGeometry((2, 1, 1, 1))
SMALL = dict(num_ranks=2401, matrix_dim=9408, max_cores=4)


class TestNodeOrder:
    def test_orders_give_different_times(self):
        a = run_caps_on_geometry(GEO, node_order="abcdet", **SMALL)
        b = run_caps_on_geometry(GEO, node_order="tedcba", **SMALL)
        assert a.communication_time != b.communication_time

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            run_caps_on_geometry(GEO, node_order="random", **SMALL)


class TestDigitOrder:
    def test_orders_give_different_times(self):
        a = run_caps_on_geometry(GEO, digit_order="deep-major", **SMALL)
        b = run_caps_on_geometry(GEO, digit_order="top-major", **SMALL)
        assert a.communication_time != b.communication_time

    def test_total_volume_identical(self):
        """Digit order only permutes which step is where; the per-rank
        words are the same, so the step-time *sums over a symmetric
        network* can differ but the step volumes cannot."""
        from repro.kernels.caps import CapsConfig, caps_steps

        a = caps_steps(CapsConfig(n=9408, num_ranks=2401,
                                  digit_order="deep-major"))
        b = caps_steps(CapsConfig(n=9408, num_ranks=2401,
                                  digit_order="top-major"))
        assert sorted(s.words_per_rank for s in a) == sorted(
            s.words_per_rank for s in b
        )

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            run_caps_on_geometry(GEO, digit_order="sideways", **SMALL)


class TestScheduleOption:
    def test_rounds_at_least_superposition(self):
        rounds = run_caps_on_geometry(GEO, schedule="rounds", **SMALL)
        overlap = run_caps_on_geometry(
            GEO, schedule="superposition", **SMALL
        )
        assert (
            rounds.communication_time
            >= overlap.communication_time - 1e-12
        )


class TestLinkBandwidth:
    def test_comm_scales_inversely(self):
        slow = run_caps_on_geometry(GEO, link_bandwidth=1.0, **SMALL)
        fast = run_caps_on_geometry(GEO, link_bandwidth=2.0, **SMALL)
        assert slow.communication_time == pytest.approx(
            2 * fast.communication_time
        )

    def test_computation_unaffected(self):
        slow = run_caps_on_geometry(GEO, link_bandwidth=1.0, **SMALL)
        fast = run_caps_on_geometry(GEO, link_bandwidth=2.0, **SMALL)
        assert slow.computation_time == fast.computation_time
