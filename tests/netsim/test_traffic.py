"""Unit tests for traffic-pattern generators."""

from __future__ import annotations

import pytest

from repro.netsim.traffic import (
    all_pairs_uniform,
    bisection_pairing,
    dimension_shift,
    random_permutation,
    tornado,
)
from repro.topology.torus import Torus


class TestBisectionPairing:
    def test_every_node_sends_once(self):
        t = Torus((4, 4, 2))
        pairs = bisection_pairing(t)
        sources = [s for s, _ in pairs]
        assert len(sources) == t.num_vertices
        assert len(set(sources)) == t.num_vertices

    def test_destinations_at_max_distance(self):
        t = Torus((4, 4, 2))
        for s, d in bisection_pairing(t):
            assert t.hop_distance(s, d) == t.diameter

    def test_involution_for_even_dims(self):
        t = Torus((8, 4, 2))
        pairs = dict(bisection_pairing(t))
        for s, d in pairs.items():
            assert pairs[d] == s

    def test_no_self_pairs_with_nontrivial_dim(self):
        t = Torus((4, 4))
        assert all(s != d for s, d in bisection_pairing(t))


class TestDimensionShift:
    def test_shift_by_one(self):
        t = Torus((4, 2))
        pairs = dict(dimension_shift(t, 0))
        assert pairs[(0, 0)] == (1, 0)
        assert pairs[(3, 1)] == (0, 1)

    def test_is_permutation(self):
        t = Torus((4, 3))
        pairs = dimension_shift(t, 1, offset=2)
        dsts = [d for _, d in pairs]
        assert len(set(dsts)) == t.num_vertices

    def test_zero_offset_rejected(self):
        t = Torus((4, 3))
        with pytest.raises(ValueError):
            dimension_shift(t, 0, offset=4)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            dimension_shift(Torus((4,)), 1)


class TestRandomPermutation:
    def test_deterministic_for_seed(self):
        t = Torus((4, 4))
        assert random_permutation(t, seed=7) == random_permutation(t, seed=7)

    def test_different_seeds_differ(self):
        t = Torus((4, 4))
        assert random_permutation(t, seed=1) != random_permutation(t, seed=2)

    def test_no_fixed_points(self):
        t = Torus((4, 4))
        for seed in range(5):
            assert all(s != d for s, d in random_permutation(t, seed=seed))

    def test_is_permutation(self):
        t = Torus((4, 4))
        pairs = random_permutation(t, seed=3)
        assert len({d for _, d in pairs}) == t.num_vertices

    def test_tiny_torus_rejected(self):
        with pytest.raises(ValueError):
            random_permutation(Torus((1,)))


class TestAllPairs:
    def test_count(self):
        t = Torus((2, 2))
        pairs = list(all_pairs_uniform(t))
        assert len(pairs) == 4 * 3

    def test_no_self_pairs(self):
        t = Torus((2, 2))
        assert all(s != d for s, d in all_pairs_uniform(t))


class TestTornado:
    def test_offset_is_half_minus_one(self):
        t = Torus((8,))
        pairs = dict(tornado(t))
        assert pairs[(0,)] == (3,)

    def test_small_ring(self):
        t = Torus((4,))
        pairs = dict(tornado(t))
        assert pairs[(0,)] == (1,)

    def test_requires_ring_of_three(self):
        with pytest.raises(ValueError):
            tornado(Torus((2, 4)), dim=0)
