"""Unit tests for dimension-ordered and BFS routing."""

from __future__ import annotations

import pytest

from repro.netsim.routing import bfs_route, dimension_ordered_route, route
from repro.topology.fattree import FatTree
from repro.topology.torus import Torus


class TestDimensionOrdered:
    def test_straight_line(self):
        t = Torus((8,))
        path = dimension_ordered_route(t, (1,), (3,))
        assert path == [(1,), (2,), (3,)]

    def test_wraps_short_way(self):
        t = Torus((8,))
        path = dimension_ordered_route(t, (0,), (6,))
        assert path == [(0,), (7,), (6,)]

    def test_length_is_hop_distance(self):
        t = Torus((6, 4, 2))
        for src in [(0, 0, 0), (3, 2, 1)]:
            for dst in [(5, 1, 0), (2, 3, 1), (0, 0, 0)]:
                p = dimension_ordered_route(t, src, dst)
                assert len(p) - 1 == t.hop_distance(src, dst)

    def test_consecutive_vertices_adjacent(self):
        t = Torus((6, 4, 2))
        p = dimension_ordered_route(t, (0, 0, 0), (3, 2, 1))
        for a, b in zip(p, p[1:]):
            assert b in {v for v, _ in t.neighbors(a)}

    def test_dims_corrected_in_order(self):
        t = Torus((4, 4))
        p = dimension_ordered_route(t, (0, 0), (2, 2))
        # Dimension 0 first: x changes before y.
        assert p[1][1] == 0

    def test_custom_dim_order(self):
        t = Torus((4, 4))
        p = dimension_ordered_route(t, (0, 0), (2, 2), dim_order=(1, 0))
        assert p[1][0] == 0

    def test_invalid_dim_order(self):
        t = Torus((4, 4))
        with pytest.raises(ValueError):
            dimension_ordered_route(t, (0, 0), (1, 1), dim_order=(0, 0))

    def test_tie_positive(self):
        t = Torus((8,))
        p = dimension_ordered_route(t, (0,), (4,), tie="positive")
        assert p[1] == (1,)
        p = dimension_ordered_route(t, (1,), (5,), tie="positive")
        assert p[1] == (2,)

    def test_tie_parity_alternates(self):
        t = Torus((8,))
        up = dimension_ordered_route(t, (0,), (4,), tie="parity")
        down = dimension_ordered_route(t, (1,), (5,), tie="parity")
        assert up[1] == (1,)
        assert down[1] == (0,)

    def test_tie_parity_balances_ring_load(self):
        """Antipodal traffic must use both directions equally."""
        t = Torus((8,))
        ups = 0
        for x in range(8):
            p = dimension_ordered_route(t, (x,), ((x + 4) % 8,))
            if p[1] == ((x + 1) % 8,):
                ups += 1
        assert ups == 4

    def test_invalid_tie(self):
        with pytest.raises(ValueError):
            dimension_ordered_route(Torus((4,)), (0,), (1,), tie="random")

    def test_invalid_vertices(self):
        t = Torus((4,))
        with pytest.raises(ValueError):
            dimension_ordered_route(t, (4,), (0,))
        with pytest.raises(ValueError):
            dimension_ordered_route(t, (0,), (4,))

    def test_self_route(self):
        t = Torus((4, 4))
        assert dimension_ordered_route(t, (1, 1), (1, 1)) == [(1, 1)]


class TestBfsRoute:
    def test_shortest_in_fattree(self):
        ft = FatTree(4)
        src = ("host", 0, 0, 0)
        dst = ("host", 0, 0, 1)  # same edge switch
        path = bfs_route(ft, src, dst)
        assert len(path) == 3

    def test_cross_pod_length(self):
        ft = FatTree(4)
        src = ("host", 0, 0, 0)
        dst = ("host", 1, 0, 0)
        path = bfs_route(ft, src, dst)
        # host-edge-agg-core-agg-edge-host.
        assert len(path) == 7

    def test_deterministic(self):
        ft = FatTree(4)
        a = bfs_route(ft, ("host", 0, 0, 0), ("host", 3, 1, 1))
        b = bfs_route(ft, ("host", 0, 0, 0), ("host", 3, 1, 1))
        assert a == b

    def test_self_route(self):
        ft = FatTree(4)
        assert bfs_route(ft, ("core", 0, 0), ("core", 0, 0)) == [
            ("core", 0, 0)
        ]


class TestDispatch:
    def test_torus_uses_dor(self):
        t = Torus((6,))
        assert route(t, (0,), (2,)) == [(0,), (1,), (2,)]

    def test_non_torus_uses_bfs(self):
        ft = FatTree(2)
        p = route(ft, ("host", 0, 0, 0), ("host", 1, 0, 0))
        assert p[0] == ("host", 0, 0, 0)
        assert p[-1] == ("host", 1, 0, 0)
