"""Unit tests for the LinkNetwork directed-link model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.network import LinkNetwork
from repro.topology.clique_product import CliqueProduct
from repro.topology.torus import Torus


class TestConstruction:
    def test_two_directed_links_per_edge(self):
        t = Torus((4, 4))
        net = LinkNetwork(t)
        assert net.num_links == 2 * t.num_edges

    def test_capacity_scaling(self):
        net = LinkNetwork(Torus((4,)), link_bandwidth=2.0)
        assert np.all(net.capacities == 2.0)

    def test_weighted_topology_capacities(self):
        g = CliqueProduct((2, 2), weights=(1.0, 3.0))
        net = LinkNetwork(g, link_bandwidth=2.0)
        assert set(np.unique(net.capacities)) == {2.0, 6.0}

    def test_capacities_read_only(self):
        net = LinkNetwork(Torus((4,)))
        with pytest.raises(ValueError):
            net.capacities[0] = 5.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            LinkNetwork(Torus((4,)), link_bandwidth=0.0)


class TestLinkLookup:
    def test_link_id_roundtrip(self):
        net = LinkNetwork(Torus((4, 3)))
        for link in range(net.num_links):
            u, v = net.link_endpoints(link)
            assert net.link_id(u, v) == link

    def test_opposite_directions_distinct(self):
        net = LinkNetwork(Torus((4,)))
        a = net.link_id((0,), (1,))
        b = net.link_id((1,), (0,))
        assert a != b

    def test_nonadjacent_raises(self):
        net = LinkNetwork(Torus((4, 4)))
        with pytest.raises(KeyError):
            net.link_id((0, 0), (2, 0))


class TestPaths:
    def test_path_to_links(self):
        net = LinkNetwork(Torus((4,)))
        path = net.path_to_links([(0,), (1,), (2,)])
        assert len(path) == 2

    def test_empty_path(self):
        net = LinkNetwork(Torus((4,)))
        assert len(net.path_to_links([(0,)])) == 0
        assert len(net.path_to_links([])) == 0

    def test_load_accumulation(self):
        net = LinkNetwork(Torus((4,)))
        p = net.path_to_links([(0,), (1,), (2,)])
        load = net.load_of_flows([p, p], volumes=[1.0, 2.0])
        assert load[p[0]] == 3.0
        assert load.sum() == 6.0

    def test_bottleneck_time(self):
        net = LinkNetwork(Torus((4,)), link_bandwidth=2.0)
        p = net.path_to_links([(0,), (1,)])
        # 6 GB over a 2 GB/s link -> 3 s.
        assert net.bottleneck_time([p], [6.0]) == pytest.approx(3.0)

    def test_bottleneck_no_flows(self):
        net = LinkNetwork(Torus((4,)))
        assert net.bottleneck_time([], []) == 0.0
