"""Unit tests for round-based schedules and collectives."""

from __future__ import annotations

import pytest

from repro.netsim.collectives import (
    pairwise_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    ring_pass,
)
from repro.netsim.network import LinkNetwork
from repro.netsim.schedule import RouteCache, TransferRound, simulate_rounds
from repro.topology.torus import Torus


@pytest.fixture
def ring8():
    torus = Torus((8,))
    net = LinkNetwork(torus, link_bandwidth=2.0)
    return torus, net, RouteCache(net, torus)


class TestTransferRound:
    def test_scalar_volume(self):
        r = TransferRound((0, 1), (1, 2), 3.0)
        assert r.volume_of(0) == 3.0
        assert r.total_volume == 6.0

    def test_vector_volume(self):
        r = TransferRound((0, 1), (1, 2), (1.0, 2.0))
        assert r.volume_of(1) == 2.0
        assert r.total_volume == 3.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TransferRound((0,), (1, 2), 1.0)
        with pytest.raises(ValueError):
            TransferRound((0, 1), (1, 2), (1.0,))


class TestSimulateRounds:
    def test_single_transfer(self, ring8):
        _, _, cache = ring8
        total, per = simulate_rounds(
            cache, [TransferRound((0,), (1,), 6.0)]
        )
        assert total == pytest.approx(3.0)  # 6 GB over 2 GB/s
        assert per == [pytest.approx(3.0)]

    def test_intranode_free(self, ring8):
        _, _, cache = ring8
        total, _ = simulate_rounds(
            cache, [TransferRound((0,), (0,), 100.0)]
        )
        assert total == 0.0

    def test_rounds_add(self, ring8):
        _, _, cache = ring8
        r = TransferRound((0,), (1,), 2.0)
        total, per = simulate_rounds(cache, [r, r, r])
        assert total == pytest.approx(3.0)
        assert len(per) == 3

    def test_shared_link_sums_load(self, ring8):
        _, _, cache = ring8
        # Two transfers both crossing link 0->1.
        rnd = TransferRound((0, 0), (1, 2), 2.0)
        total, _ = simulate_rounds(cache, [rnd])
        assert total == pytest.approx(2.0)  # 4 GB on the shared link

    def test_cache_reuse(self, ring8):
        _, _, cache = ring8
        a = cache.links(0, 3)
        b = cache.links(0, 3)
        assert a is b


class TestCollectives:
    def test_allgather_round_count(self):
        assert len(ring_allgather(8, 1.0)) == 7
        assert ring_allgather(1, 1.0) == []

    def test_allgather_each_round_is_shift(self):
        for rnd in ring_allgather(5, 1.0):
            for s, d in zip(rnd.sources, rnd.destinations):
                assert d == (s + 1) % 5

    def test_allreduce_round_count(self):
        assert len(recursive_doubling_allreduce(8, 1.0)) == 3

    def test_allreduce_requires_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_doubling_allreduce(6, 1.0)

    def test_allreduce_partners_symmetric(self):
        for rnd in recursive_doubling_allreduce(8, 1.0):
            pairs = set(zip(rnd.sources, rnd.destinations))
            assert all((b, a) in pairs for a, b in pairs)

    def test_alltoall_round_count_and_offsets(self):
        rounds = pairwise_alltoall(6, 1.0)
        assert len(rounds) == 5
        for j, rnd in enumerate(rounds, start=1):
            for s, d in zip(rnd.sources, rnd.destinations):
                assert d == (s + j) % 6

    def test_alltoall_total_volume(self):
        rounds = pairwise_alltoall(4, 2.0)
        assert sum(r.total_volume for r in rounds) == 4 * 3 * 2.0

    def test_ring_pass_mirrors_allgather(self):
        a = ring_allgather(6, 1.5)
        b = ring_pass(6, 1.5)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra.sources == rb.sources
            assert ra.destinations == rb.destinations

    def test_collective_times_on_ring(self, ring8):
        """Allgather on the 8-ring: each round moves 1 GB one hop on
        every link simultaneously -> 0.5 s per round, 7 rounds."""
        _, _, cache = ring8
        total, per = simulate_rounds(cache, ring_allgather(8, 1.0))
        assert total == pytest.approx(7 * 0.5)

    def test_alltoall_round_costs_on_ring(self, ring8):
        """Shift-round costs on the 8-ring: near-antipodal offsets (3
        and 5) are the worst — they load one direction with 3 hops per
        flow (the tornado effect) — while the exact-half offset 4 is
        parity-split across both directions and costs less."""
        _, _, cache = ring8
        _, per = simulate_rounds(cache, pairwise_alltoall(8, 1.0))
        assert per == [0.5, 1.0, 1.5, 1.0, 1.5, 1.0, 0.5]
        assert max(per) == per[2] == per[4]


class TestValidation:
    def test_route_cache_topology_mismatch(self):
        t1 = Torus((8,))
        t2 = Torus((4,))
        net = LinkNetwork(t1, link_bandwidth=1.0)
        with pytest.raises(ValueError):
            RouteCache(net, t2)
