"""Tests for fault-aware routing and the LinkNetwork fault overlay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultSet, random_link_failures
from repro.netsim.fairness import max_min_fair_rates
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import (
    PartitionDisconnectedError,
    check_tie,
    dimension_ordered_route,
    fault_aware_route,
)
from repro.topology.torus import Torus


class TestFaultAwareRoute:
    def test_no_faults_matches_healthy_route(self):
        """Empty/None fault sets must be bit-identical to route()."""
        torus = Torus((4, 4))
        verts = list(torus.vertices())
        for src in verts:
            for dst in verts:
                if src == dst:
                    continue
                healthy = dimension_ordered_route(torus, src, dst)
                assert fault_aware_route(torus, src, dst, None) == healthy
                assert (
                    fault_aware_route(torus, src, dst, FaultSet()) == healthy
                )

    def test_natural_path_kept_when_unaffected(self):
        """Faults elsewhere leave the DOR path untouched."""
        torus = Torus((8,))
        faults = FaultSet(failed_links=[((5,), (6,))])
        assert fault_aware_route(torus, (0,), (2,), faults) == (
            dimension_ordered_route(torus, (0,), (2,))
        )

    def test_detour_avoids_failed_link(self):
        torus = Torus((8,))
        faults = FaultSet(failed_links=[((1,), (2,))])
        path = fault_aware_route(torus, (0,), (4,), faults)
        assert path[0] == (0,) and path[-1] == (4,)
        for a, b in zip(path, path[1:]):
            assert not faults.blocks(a, b)
        # The only surviving route wraps the long way: 4 hops becomes 4
        # hops the other direction on an 8-ring.
        assert len(path) - 1 == 4

    def test_detour_avoids_failed_node(self):
        torus = Torus((4, 4))
        faults = FaultSet(failed_nodes=[(1, 0)])
        path = fault_aware_route(torus, (0, 0), (2, 0), faults)
        assert (1, 0) not in path
        for a, b in zip(path, path[1:]):
            assert not faults.blocks(a, b)

    def test_disconnected_raises_typed_error(self):
        torus = Torus((8,))
        cut = FaultSet(failed_links=[((0,), (1,)), ((7,), (0,))])
        with pytest.raises(PartitionDisconnectedError) as exc_info:
            fault_aware_route(torus, (0,), (4,), cut)
        err = exc_info.value
        assert err.src == (0,) and err.dst == (4,)
        assert "(0,)" in str(err) and "(4,)" in str(err)
        assert "failed links" in str(err)

    def test_failed_endpoint_raises(self):
        torus = Torus((8,))
        down = FaultSet(failed_nodes=[(4,)])
        with pytest.raises(PartitionDisconnectedError):
            fault_aware_route(torus, (0,), (4,), down)
        with pytest.raises(PartitionDisconnectedError):
            fault_aware_route(torus, (4,), (0,), down)

    def test_directed_failure_blocks_one_way_only(self):
        torus = Torus((4,))
        one_way = FaultSet(
            failed_links=[((0,), (1,))], undirected=False
        )
        fwd = fault_aware_route(torus, (0,), (1,), one_way)
        assert fwd == [(0,), (3,), (2,), (1,)]
        back = fault_aware_route(torus, (1,), (0,), one_way)
        assert back == [(1,), (0,)]

    def test_tie_validation(self):
        assert check_tie("parity") == "parity"
        assert check_tie("positive") == "positive"
        with pytest.raises(ValueError):
            check_tie("bogus")
        with pytest.raises(ValueError):
            fault_aware_route(Torus((4,)), (0,), (1,), None, tie="bogus")


class TestLinkNetworkFaults:
    def test_with_faults_zeroes_failed_links(self):
        torus = Torus((4,))
        net = LinkNetwork(torus, link_bandwidth=2.0)
        faulted = net.with_faults(FaultSet(failed_links=[((0,), (1,))]))
        dead = faulted.failed_link_ids()
        assert len(dead) == 2  # both directions
        assert np.all(faulted.capacities[dead] == 0.0)
        # The original network is untouched.
        assert np.all(net.capacities == 2.0)
        assert len(net.failed_link_ids()) == 0

    def test_with_faults_scales_degraded_links(self):
        torus = Torus((4,))
        net = LinkNetwork(torus, link_bandwidth=2.0)
        faulted = net.with_faults(
            FaultSet(degraded_links={((0,), (1,)): 0.25})
        )
        changed = np.flatnonzero(faulted.capacities != 2.0)
        assert len(changed) == 2
        assert np.all(faulted.capacities[changed] == 0.5)

    def test_faults_property_round_trips(self):
        torus = Torus((4,))
        net = LinkNetwork(torus, link_bandwidth=2.0)
        assert net.faults is None
        fs = FaultSet(failed_links=[((0,), (1,))])
        assert net.with_faults(fs).faults == fs

    def test_shared_index_between_base_and_faulted(self):
        """The faulted clone shares the link index (same link ids)."""
        torus = Torus((4, 4))
        net = LinkNetwork(torus, link_bandwidth=2.0)
        faulted = net.with_faults(random_link_failures(torus, 2, seed=1))
        path = dimension_ordered_route(torus, (0, 0), (2, 2))
        assert np.array_equal(
            net.path_to_links(path), faulted.path_to_links(path)
        )

    def test_fairness_rejects_flow_on_dead_link(self):
        """Rates cannot be solved across a zero-capacity (failed) link —
        flows must be rerouted first."""
        torus = Torus((4,))
        net = LinkNetwork(torus, link_bandwidth=2.0)
        faults = FaultSet(failed_links=[((0,), (1,))])
        faulted = net.with_faults(faults)
        dead_path = faulted.path_to_links([(0,), (1,)])
        with pytest.raises(ValueError, match="reroute"):
            max_min_fair_rates([dead_path], faulted.capacities)
        # A rerouted path over surviving links solves fine.
        ok = faulted.path_to_links(
            fault_aware_route(torus, (0,), (1,), faults)
        )
        rates = max_min_fair_rates([ok], faulted.capacities)
        assert rates[0] == pytest.approx(2.0)
