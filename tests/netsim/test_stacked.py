"""Unit tests for the stacked multi-scenario path container and solvers.

The bit-for-bit equivalence contract against the scalar solvers lives in
``tests/properties/test_stacked_equivalence.py``; these tests cover the
container's structure, validation, and the stacked solvers' small
hand-checkable cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.batchroute import PathMatrix
from repro.netsim.fairness import (
    max_min_fair_rates,
    stacked_max_min_fair_rates,
)
from repro.netsim.fluid import FluidSimulation, StackedFluidSimulation
from repro.netsim.stacked import StackedPathMatrix, segment_min


def _paths(*lists):
    return [np.asarray(p, dtype=np.int64) for p in lists]


def _pm(*lists):
    return PathMatrix.from_paths(_paths(*lists))


class TestSegmentMin:
    def test_basic_segments(self):
        vals = np.array([3.0, 1.0, 5.0, 2.0, 4.0])
        base = np.array([0, 2, 5])
        assert segment_min(vals, base).tolist() == [1.0, 2.0]

    def test_empty_segment_gets_fill(self):
        vals = np.array([3.0, 1.0])
        base = np.array([0, 0, 2, 2])
        out = segment_min(vals, base, fill=np.inf)
        assert out[0] == np.inf
        assert out[1] == 1.0
        assert out[2] == np.inf

    def test_empty_segment_does_not_leak_neighbor(self):
        # reduceat on an empty segment would return the *next* segment's
        # first element; the mask must prevent that.
        vals = np.array([9.0, 7.0])
        base = np.array([0, 1, 1, 2])
        out = segment_min(vals, base, fill=-1.0)
        assert out.tolist() == [9.0, -1.0, 7.0]

    def test_all_empty(self):
        out = segment_min(np.empty(0), np.array([0, 0, 0]))
        assert np.isinf(out).all()

    def test_custom_fill(self):
        out = segment_min(np.empty(0), np.array([0, 0]), fill=0.0)
        assert out.tolist() == [0.0]


class TestStackedPathMatrixConstruction:
    def test_from_scenarios_layout(self):
        stack = StackedPathMatrix.from_scenarios(
            [
                (_pm([0], [0, 1]), np.array([1.0, 2.0]), None),
                (_pm([0, 2]), np.array([4.0, 5.0, 6.0]), None),
            ]
        )
        assert stack.num_scenarios == 2
        assert len(stack) == 2
        assert stack.num_flows == 3
        assert stack.num_links == 5
        assert stack.flow_base.tolist() == [0, 2, 3]
        assert stack.link_base.tolist() == [0, 2, 5]
        # Scenario 1's link ids are shifted past scenario 0's 2 links.
        assert stack.link_ids.tolist() == [0, 0, 1, 2, 4]
        assert stack.capacities.tolist() == [1.0, 2.0, 4.0, 5.0, 6.0]
        assert stack.flow_scenarios.tolist() == [0, 0, 1]
        assert stack.active.all()

    def test_active_indices_become_mask(self):
        stack = StackedPathMatrix.from_scenarios(
            [
                (_pm([0], [1], [0, 1]), np.array([1.0, 1.0]),
                 np.array([0, 2])),
            ]
        )
        assert stack.active.tolist() == [True, False, True]

    def test_flow_and_link_slices(self):
        stack = StackedPathMatrix.from_scenarios(
            [
                (_pm([0]), np.array([1.0]), None),
                (_pm([0], [1]), np.array([2.0, 3.0]), None),
            ]
        )
        assert stack.flow_slice(1) == slice(1, 3)
        assert stack.link_slice(1) == slice(1, 3)
        with pytest.raises(IndexError):
            stack.flow_slice(2)
        with pytest.raises(IndexError):
            stack.link_slice(-1)

    def test_split_returns_views_in_order(self):
        stack = StackedPathMatrix.from_scenarios(
            [
                (_pm([0]), np.array([1.0]), None),
                (_pm([0], [1]), np.array([2.0, 3.0]), None),
            ]
        )
        flat = np.array([10.0, 20.0, 30.0])
        parts = stack.split(flat)
        assert [p.tolist() for p in parts] == [[10.0], [20.0, 30.0]]
        assert parts[1].base is flat  # view, not copy

    def test_arrays_read_only(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0]), np.array([1.0]), None)]
        )
        with pytest.raises(ValueError):
            stack.capacities[0] = 9.0
        with pytest.raises(ValueError):
            stack.active[0] = False

    def test_rejects_zero_scenarios(self):
        with pytest.raises(ValueError, match="zero scenarios"):
            StackedPathMatrix.from_scenarios([])

    def test_rejects_out_of_range_link_ids(self):
        with pytest.raises(ValueError, match="capacity slots"):
            StackedPathMatrix.from_scenarios(
                [(_pm([5]), np.array([1.0]), None)]
            )

    def test_rejects_out_of_range_active(self):
        with pytest.raises(ValueError, match="active"):
            StackedPathMatrix.from_scenarios(
                [(_pm([0]), np.array([1.0]), np.array([3]))]
            )

    def test_rejects_cross_scenario_link_ids(self):
        # Hand-built CSR whose entry strays into the next scenario's
        # link region must be rejected.
        with pytest.raises(ValueError, match="region"):
            StackedPathMatrix(
                link_ids=np.array([1]),  # scenario 0 only owns link 0
                offsets=np.array([0, 1, 1]),
                flow_base=np.array([0, 1, 2]),
                link_base=np.array([0, 1, 2]),
                capacities=np.array([1.0, 1.0]),
            )

    def test_repr(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0]), np.array([1.0]), None)]
        )
        assert "scenarios=1" in repr(stack)


class TestStackedFairness:
    def test_two_independent_scenarios(self):
        stack = StackedPathMatrix.from_scenarios(
            [
                (_pm([0], [0]), np.array([2.0]), None),
                (_pm([0], [0, 1], [1]), np.array([1.0, 2.0]), None),
            ]
        )
        rates = stacked_max_min_fair_rates(stack)
        assert np.allclose(rates[:2], [1.0, 1.0])
        assert np.allclose(rates[2:], [0.5, 0.5, 1.5])

    def test_matches_scalar_per_scenario(self):
        pm = _pm([0], [0, 1], [1], [1])
        caps = np.array([2.0, 3.0])
        stack = StackedPathMatrix.from_scenarios(
            [(pm, caps, None), (pm, caps * 2, None)]
        )
        rates = stacked_max_min_fair_rates(stack)
        s0 = max_min_fair_rates(pm, caps)
        s1 = max_min_fair_rates(pm, caps * 2)
        assert rates[:4].tobytes() == s0.tobytes()
        assert rates[4:].tobytes() == s1.tobytes()

    def test_inactive_flows_rate_zero(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0], [0]), np.array([2.0]), np.array([1]))]
        )
        rates = stacked_max_min_fair_rates(stack)
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(2.0)

    def test_bottleneck_links_are_global_ids(self):
        stack = StackedPathMatrix.from_scenarios(
            [
                (_pm([0]), np.array([1.0, 7.0]), None),
                (_pm([1]), np.array([7.0, 3.0]), None),
            ]
        )
        _, bottlenecks = stacked_max_min_fair_rates(
            stack, return_bottlenecks=True
        )
        # Scenario 0 saturates its link 0 (global 0); scenario 1 its
        # link 1 (global 3).
        assert bottlenecks.tolist() == [0, 3]

    def test_demand_caps_respected(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0], [0]), np.array([4.0]), None)]
        )
        rates = stacked_max_min_fair_rates(
            stack, np.array([0.5, 10.0])
        )
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(3.5)

    def test_rejects_non_stack(self):
        with pytest.raises(TypeError):
            stacked_max_min_fair_rates(_pm([0]))

    def test_rejects_active_zero_capacity_link(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0]), np.array([0.0]), None)]
        )
        with pytest.raises(ValueError, match="zero-capacity"):
            stacked_max_min_fair_rates(stack)

    def test_inactive_flow_may_cross_dead_link(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0], [1]), np.array([0.0, 2.0]),
              np.array([1]))]
        )
        rates = stacked_max_min_fair_rates(stack)
        assert rates.tolist() == [0.0, 2.0]


class TestStackedFluid:
    def test_matches_scalar_engine(self):
        import types

        pm = _pm([0], [0, 1], [1])
        caps = np.array([1.0, 2.0])
        vols = np.array([1.0, 2.0, 3.0])
        stack = StackedPathMatrix.from_scenarios([(pm, caps, None)])
        mk, comp, init = StackedFluidSimulation(stack, vols).solve()
        net = types.SimpleNamespace(capacities=caps)
        smk, scomp, sinit = FluidSimulation(net, pm, vols).solve()
        assert float(mk[0]) == smk
        assert comp.tobytes() == scomp.tobytes()
        assert init.tobytes() == sinit.tobytes()

    def test_scenarios_advance_independently(self):
        pm = _pm([0])
        stack = StackedPathMatrix.from_scenarios(
            [
                (pm, np.array([1.0]), None),
                (pm, np.array([4.0]), None),
            ]
        )
        mk, comp, _ = StackedFluidSimulation(
            stack, np.array([2.0, 2.0])
        ).solve()
        assert mk.tolist() == [2.0, 0.5]
        assert comp.tolist() == [2.0, 0.5]

    def test_inactive_flows_not_simulated(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0], [0]), np.array([1.0]), np.array([0]))]
        )
        mk, comp, init = StackedFluidSimulation(
            stack, np.array([3.0, 5.0])
        ).solve()
        assert mk[0] == pytest.approx(3.0)
        assert comp[1] == 0.0
        assert init[1] == 0.0

    def test_rounds_used_recorded(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0], [0]), np.array([2.0]), None)]
        )
        sim = StackedFluidSimulation(stack, np.array([1.0, 4.0]))
        sim.solve()
        assert sim.rounds_used == 2

    def test_volume_validation(self):
        stack = StackedPathMatrix.from_scenarios(
            [(_pm([0]), np.array([1.0]), None)]
        )
        with pytest.raises(ValueError, match="volumes"):
            StackedFluidSimulation(stack, np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="positive"):
            StackedFluidSimulation(stack, np.array([0.0]))
        with pytest.raises(TypeError):
            StackedFluidSimulation(_pm([0]), np.array([1.0]))
