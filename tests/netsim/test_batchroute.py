"""Unit tests for the CSR path container and the batch router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.batchroute import (
    PathMatrix,
    batch_dimension_ordered_routes,
    link_layout,
    vector_enabled,
    vertex_indices,
)
from repro.netsim.fairness import max_min_fair_rates
from repro.netsim.network import LinkNetwork
from repro.topology.torus import Torus


class TestPathMatrix:
    def test_from_paths_roundtrip(self):
        arrays = [[0, 1, 2], [], [5], [3, 4]]
        pm = PathMatrix.from_paths(arrays)
        assert len(pm) == 4
        assert pm.total_links == 6
        assert [p.tolist() for p in pm] == arrays
        assert pm.lengths.tolist() == [3, 0, 1, 2]

    def test_from_paths_on_pathmatrix_is_identity(self):
        pm = PathMatrix.from_paths([[0], [1]])
        assert PathMatrix.from_paths(pm) is pm

    def test_negative_index_and_bounds(self):
        pm = PathMatrix.from_paths([[0, 1], [2]])
        assert pm[-1].tolist() == [2]
        with pytest.raises(IndexError):
            pm[2]
        with pytest.raises(IndexError):
            pm[-3]

    def test_arrays_are_read_only(self):
        pm = PathMatrix.from_paths([[0, 1], [2]])
        with pytest.raises(ValueError):
            pm.link_ids[0] = 9
        with pytest.raises(ValueError):
            pm[0][0] = 9

    def test_flow_ids_align_with_link_ids(self):
        pm = PathMatrix.from_paths([[7, 8], [], [9]])
        assert pm.flow_ids().tolist() == [0, 0, 2]
        assert pm.link_ids.tolist() == [7, 8, 9]

    def test_empty(self):
        pm = PathMatrix.from_paths([])
        assert len(pm) == 0 and pm.total_links == 0
        assert list(pm) == []

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            PathMatrix(np.array([1, 2]), np.array([0, 1]))  # wrong tail
        with pytest.raises(ValueError):
            PathMatrix(np.array([1, 2]), np.array([0, 2, 1, 2]))


class TestVectorEnabled:
    @pytest.mark.parametrize("raw", ["0", "false", "no", "off", "OFF"])
    def test_falsey_disables(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_VECTOR", raw)
        assert vector_enabled() is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "on", ""])
    def test_other_values_enable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_VECTOR", raw)
        assert vector_enabled() is True

    def test_unset_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR", raising=False)
        assert vector_enabled() is True


class TestBatchRouterValidation:
    def test_length_mismatch(self):
        t = Torus((4, 2))
        with pytest.raises(ValueError, match="sources"):
            batch_dimension_ordered_routes(
                t, np.array([0, 1]), np.array([2])
            )

    def test_node_index_bounds(self):
        t = Torus((4, 2))
        with pytest.raises(ValueError, match="node indices"):
            batch_dimension_ordered_routes(
                t, np.array([0]), np.array([8])
            )

    def test_bad_dim_order(self):
        t = Torus((4, 2))
        with pytest.raises(ValueError, match="permutation"):
            batch_dimension_ordered_routes(
                t, np.array([0]), np.array([1]), dim_order=[0, 0]
            )

    def test_bad_tie(self):
        t = Torus((4, 2))
        with pytest.raises(ValueError):
            batch_dimension_ordered_routes(
                t, np.array([0]), np.array([1]), tie="coin-flip"
            )

    def test_no_flows(self):
        t = Torus((4, 2))
        pm = batch_dimension_ordered_routes(
            t, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(pm) == 0

    def test_same_node_pairs_have_empty_paths(self):
        t = Torus((4, 2))
        pm = batch_dimension_ordered_routes(
            t, np.array([3, 5]), np.array([3, 5])
        )
        assert pm.lengths.tolist() == [0, 0]


class TestVertexIndices:
    def test_matches_vertices_order(self):
        t = Torus((3, 2))
        verts = list(t.vertices())
        idx = vertex_indices(t, verts)
        assert idx.tolist() == list(range(len(verts)))

    def test_rejects_wrong_arity(self):
        t = Torus((3, 2))
        with pytest.raises(ValueError):
            vertex_indices(t, [(1, 1, 1)])

    def test_empty(self):
        t = Torus((3, 2))
        assert len(vertex_indices(t, [])) == 0


class TestLayoutMemoized:
    def test_layout_cache_hits(self):
        link_layout.cache_clear()
        a = link_layout(Torus((4, 3, 2)))
        b = link_layout(Torus((4, 3, 2)))
        assert a is b
        info = link_layout.cache_info()
        assert info.hits >= 1

    def test_registered_name(self):
        from repro.caching import cache_stats

        assert link_layout.cache.name in cache_stats()


class TestFairnessPathMatrixParity:
    """The CSR-native solver must be bit-identical to the list API."""

    def _pairing_case(self, dims):
        t = Torus(dims)
        net = LinkNetwork(t, link_bandwidth=2.0)
        n = t.num_vertices
        src = np.arange(n, dtype=np.int64)
        dst = np.array(
            [
                int(
                    vertex_indices(t, [t.antipode(v)])[0]
                )
                for v in t.vertices()
            ],
            dtype=np.int64,
        )
        pm = batch_dimension_ordered_routes(t, src, dst)
        return net, pm

    @pytest.mark.parametrize("dims", [(8, 4, 2), (4, 4), (5, 3, 2)])
    def test_pathmatrix_equals_list_of_arrays(self, dims):
        net, pm = self._pairing_case(dims)
        as_lists = [pm[i] for i in range(len(pm))]
        r_pm = max_min_fair_rates(pm, net.capacities)
        r_list = max_min_fair_rates(as_lists, net.capacities)
        assert np.array_equal(r_pm, r_list)

    def test_active_subset_matches_sliced_solve(self):
        net, pm = self._pairing_case((8, 4, 2))
        keep = np.arange(0, len(pm), 3, dtype=np.int64)
        r_subset = max_min_fair_rates(pm, net.capacities, active=keep)
        r_manual = max_min_fair_rates(
            [pm[int(i)] for i in keep], net.capacities
        )
        assert np.array_equal(r_subset, r_manual)

    def test_active_with_demands_uses_global_indexing(self):
        net, pm = self._pairing_case((4, 4))
        demands = np.linspace(0.1, 0.5, len(pm))
        keep = np.array([1, 5, 7], dtype=np.int64)
        r = max_min_fair_rates(
            pm, net.capacities, demands, active=keep
        )
        # Tiny demands are met exactly for a sparse subset.
        assert r == pytest.approx(demands[keep])

    def test_active_bounds_checked(self):
        net, pm = self._pairing_case((4, 4))
        with pytest.raises(ValueError, match="active"):
            max_min_fair_rates(
                pm, net.capacities, active=np.array([len(pm)])
            )

    def test_zero_capacity_error_names_global_flow(self):
        pm = PathMatrix.from_paths([[0], [1], [1]])
        caps = np.array([1.0, 0.0])
        with pytest.raises(ValueError, match=r"flow 1 crosses failed"):
            max_min_fair_rates(pm, caps)
        with pytest.raises(ValueError, match=r"flow 2 crosses failed"):
            max_min_fair_rates(
                pm, caps, active=np.array([0, 2])
            )
