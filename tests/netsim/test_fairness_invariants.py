"""Randomized invariants of the max-min fair rate solver.

For random flow/link configurations (fixed seeds — the draws are part
of the test identity), :func:`max_min_fair_rates` must satisfy the
defining properties of a max-min fair allocation:

1. **Feasibility** — no link carries more than its capacity (within
   the solver's epsilon).
2. **Bottleneck characterization** — every finite-rate flow is frozen
   for a reason: a saturated link on its path, or (when demands are
   given) its own demand.
3. **Demand compliance** — no flow exceeds its demand.
4. **Positivity** — flows with usable paths get strictly positive
   rates when every link has positive capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.fairness import max_min_fair_rates

_EPS = 1e-9


def random_instance(seed: int, with_demands: bool):
    """A random feasible (paths, capacities, demands) triple."""
    rng = np.random.default_rng(seed)
    n_links = int(rng.integers(3, 40))
    n_flows = int(rng.integers(1, 30))
    capacities = rng.uniform(0.5, 10.0, size=n_links)
    paths = []
    for _ in range(n_flows):
        length = int(rng.integers(1, min(6, n_links) + 1))
        links = rng.choice(n_links, size=length, replace=False)
        paths.append(np.asarray(sorted(int(l) for l in links)))
    demands = (
        rng.uniform(0.05, 8.0, size=n_flows).tolist()
        if with_demands
        else None
    )
    return paths, capacities, demands


def link_loads(paths, rates, n_links):
    loads = np.zeros(n_links)
    for p, r in zip(paths, rates):
        if np.isfinite(r):
            loads[p] += r
    return loads


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("with_demands", [False, True])
def test_max_min_invariants(seed, with_demands):
    paths, capacities, demands = random_instance(seed, with_demands)
    rates = max_min_fair_rates(paths, capacities, demands)

    n_links = len(capacities)
    assert len(rates) == len(paths)

    # (4) Positivity: every flow over positive-capacity links moves.
    assert np.all(rates > 0)

    # (1) Feasibility: no link oversubscribed beyond capacity + eps.
    loads = link_loads(paths, rates, n_links)
    assert np.all(loads <= capacities + _EPS * np.maximum(capacities, 1.0))

    # (3) Demands are never exceeded.
    if demands is not None:
        for r, d in zip(rates, demands):
            assert r <= d + _EPS

    # (2) Bottleneck characterization: each finite-rate flow crosses a
    # saturated link or sits at its demand.  (Empty-path flows are inf
    # or demand-capped; none are generated here.)
    saturated = loads >= capacities - 1e-6 * np.maximum(capacities, 1.0)
    for i, (p, r) in enumerate(zip(paths, rates)):
        assert np.isfinite(r)
        at_demand = demands is not None and r >= demands[i] - 1e-6
        assert bool(saturated[p].any()) or at_demand, (
            f"flow {i} (rate {r}) is not bottlenecked by any saturated "
            f"link nor by its demand"
        )


@pytest.mark.parametrize("seed", range(5))
def test_rates_are_deterministic(seed):
    paths, capacities, demands = random_instance(seed, True)
    a = max_min_fair_rates(paths, capacities, demands)
    b = max_min_fair_rates(paths, capacities, demands)
    assert np.array_equal(a, b)


def test_empty_path_flow_unconstrained():
    paths = [np.asarray([], dtype=np.int64), np.asarray([0])]
    rates = max_min_fair_rates(paths, np.asarray([2.0]))
    assert np.isinf(rates[0])
    assert rates[1] == pytest.approx(2.0)


def test_empty_path_flow_capped_by_demand():
    paths = [np.asarray([], dtype=np.int64)]
    rates = max_min_fair_rates(paths, np.asarray([2.0]), demands=[1.5])
    assert rates[0] == pytest.approx(1.5)


def test_single_bottleneck_shared_equally():
    paths = [np.asarray([0]), np.asarray([0]), np.asarray([0, 1])]
    rates = max_min_fair_rates(paths, np.asarray([3.0, 10.0]))
    assert np.allclose(rates, 1.0)
