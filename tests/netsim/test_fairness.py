"""Unit tests for max-min fair rate allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.fairness import max_min_fair_rates


def _paths(*lists):
    return [np.asarray(p, dtype=np.int64) for p in lists]


class TestBasicSharing:
    def test_two_flows_share_one_link(self):
        rates = max_min_fair_rates(_paths([0], [0]), np.array([2.0]))
        assert np.allclose(rates, [1.0, 1.0])

    def test_single_flow_gets_capacity(self):
        rates = max_min_fair_rates(_paths([0, 1]), np.array([3.0, 5.0]))
        assert rates[0] == pytest.approx(3.0)

    def test_disjoint_flows_independent(self):
        rates = max_min_fair_rates(
            _paths([0], [1]), np.array([1.0, 4.0])
        )
        assert np.allclose(rates, [1.0, 4.0])

    def test_empty_path_unconstrained(self):
        rates = max_min_fair_rates(_paths([], [0]), np.array([2.0]))
        assert rates[0] == np.inf
        assert rates[1] == pytest.approx(2.0)

    def test_no_flows(self):
        assert len(max_min_fair_rates([], np.array([1.0]))) == 0


class TestWaterFilling:
    def test_classic_three_flow_example(self):
        """Flows A: link0, B: link0+link1, C: link1 with caps (1, 2):
        A and B share link0 at 0.5 each; C then gets 1.5 on link1."""
        rates = max_min_fair_rates(
            _paths([0], [0, 1], [1]), np.array([1.0, 2.0])
        )
        assert np.allclose(rates, [0.5, 0.5, 1.5])

    def test_long_flow_bottlenecked_once(self):
        # A long path through many links is limited by the tightest one.
        rates = max_min_fair_rates(
            _paths([0, 1, 2]), np.array([5.0, 1.0, 9.0])
        )
        assert rates[0] == pytest.approx(1.0)

    def test_rates_saturate_some_link(self):
        paths = _paths([0], [0, 1], [1], [1])
        caps = np.array([2.0, 3.0])
        rates = max_min_fair_rates(paths, caps)
        load = np.zeros(2)
        for p, r in zip(paths, rates):
            load[p] += r
        assert np.any(np.isclose(load, caps))
        assert np.all(load <= caps + 1e-9)

    def test_max_min_dominance(self):
        """No flow can be raised without lowering a slower one (spot
        check: the minimum rate is maximal)."""
        paths = _paths([0], [0, 1], [1])
        caps = np.array([1.0, 2.0])
        rates = max_min_fair_rates(paths, caps)
        assert rates.min() == pytest.approx(0.5)


class TestDemands:
    def test_demand_caps_rate(self):
        rates = max_min_fair_rates(
            _paths([0]), np.array([10.0]), demands=[3.0]
        )
        assert rates[0] == pytest.approx(3.0)

    def test_freed_capacity_redistributed(self):
        # Two flows on one 4-capacity link; one capped at 1 -> other gets 3.
        rates = max_min_fair_rates(
            _paths([0], [0]), np.array([4.0]), demands=[1.0, 10.0]
        )
        assert np.allclose(sorted(rates), [1.0, 3.0])

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            max_min_fair_rates(_paths([0]), np.array([1.0]), demands=[0.0])
        with pytest.raises(ValueError):
            max_min_fair_rates(
                _paths([0]), np.array([1.0]), demands=[1.0, 2.0]
            )


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            max_min_fair_rates(_paths([0]), np.array([0.0]))


class TestSymmetricPatterns:
    def test_ring_antipodal_rates_uniform(self):
        """Every flow in the symmetric pairing pattern gets the same
        max-min rate."""
        from repro.netsim.network import LinkNetwork
        from repro.netsim.routing import dimension_ordered_route
        from repro.netsim.traffic import bisection_pairing
        from repro.topology.torus import Torus

        t = Torus((8, 4, 2))
        net = LinkNetwork(t, link_bandwidth=2.0)
        paths = [
            net.path_to_links(dimension_ordered_route(t, s, d))
            for s, d in bisection_pairing(t)
        ]
        rates = max_min_fair_rates(paths, net.capacities)
        assert rates.max() == pytest.approx(rates.min())
