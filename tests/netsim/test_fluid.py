"""Unit tests for the fluid completion-time engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.fluid import FluidSimulation, simulate_flows
from repro.netsim.network import LinkNetwork
from repro.netsim.routing import dimension_ordered_route
from repro.topology.torus import Torus


def _net_and_paths():
    t = Torus((4,))
    net = LinkNetwork(t, link_bandwidth=2.0)
    p01 = net.path_to_links(dimension_ordered_route(t, (0,), (1,)))
    p12 = net.path_to_links(dimension_ordered_route(t, (1,), (2,)))
    return net, p01, p12


class TestSingleFlows:
    def test_single_flow_time(self):
        net, p01, _ = _net_and_paths()
        assert simulate_flows(net, [p01], [6.0]) == pytest.approx(3.0)

    def test_disjoint_flows_parallel(self):
        net, p01, p12 = _net_and_paths()
        makespan = simulate_flows(net, [p01, p12], [6.0, 2.0])
        assert makespan == pytest.approx(3.0)

    def test_empty_flow_set(self):
        net, _, _ = _net_and_paths()
        assert simulate_flows(net, [], []) == 0.0


class TestProgressiveRefill:
    def test_rates_rise_after_completion(self):
        """Two flows share a 2 GB/s link at 1 GB/s each; the 2 GB flow
        finishes at t=2, then the 6 GB flow's remaining 4 GB moves at
        the full 2 GB/s, finishing at t=4."""
        t = Torus((4,))
        net = LinkNetwork(t, link_bandwidth=2.0)
        p = net.path_to_links(dimension_ordered_route(t, (0,), (1,)))
        makespan, results = FluidSimulation(
            net, [p, p], [2.0, 6.0]
        ).run()
        assert results[0].completion_time == pytest.approx(2.0)
        assert makespan == pytest.approx(4.0)

    def test_initial_rates_reported(self):
        t = Torus((4,))
        net = LinkNetwork(t, link_bandwidth=2.0)
        p = net.path_to_links(dimension_ordered_route(t, (0,), (1,)))
        _, results = FluidSimulation(net, [p, p], [1.0, 1.0]).run()
        assert all(r.initial_rate == pytest.approx(1.0) for r in results)

    def test_makespan_equals_max_completion(self):
        net, p01, p12 = _net_and_paths()
        makespan, results = FluidSimulation(
            net, [p01, p12, p01], [1.0, 5.0, 2.0]
        ).run()
        assert makespan == pytest.approx(
            max(r.completion_time for r in results)
        )

    def test_conservation(self):
        """Total completion-weighted capacity covers total volume."""
        net, p01, p12 = _net_and_paths()
        vols = [3.0, 1.0, 2.0]
        makespan, _ = FluidSimulation(net, [p01, p12, p01], vols).run()
        # Bottleneck link (0->1) carries 5 GB at 2 GB/s -> >= 2.5 s.
        assert makespan >= 2.5 - 1e-9


class TestValidation:
    def test_volume_path_mismatch(self):
        net, p01, _ = _net_and_paths()
        with pytest.raises(ValueError):
            FluidSimulation(net, [p01], [1.0, 2.0])

    def test_nonpositive_volume(self):
        net, p01, _ = _net_and_paths()
        with pytest.raises(ValueError):
            FluidSimulation(net, [p01], [0.0])


class TestGroupedCompletion:
    """All flows finishing within _EPS of each other retire together."""

    def _symmetric_pairing(self, dims):
        from repro.experiments.pairing import pairing_path_matrix

        t = Torus(dims)
        net = LinkNetwork(t, link_bandwidth=2.0)
        return net, pairing_path_matrix(t)

    @pytest.mark.parametrize("dims", [(8, 4, 2), (4, 4), (8, 2)])
    def test_symmetric_pattern_solves_in_one_round(self, dims):
        net, pm = self._symmetric_pairing(dims)
        sim = FluidSimulation(net, pm, [3.0] * len(pm))
        makespan, results = sim.run()
        assert sim.rounds_used == 1
        assert all(
            r.completion_time == pytest.approx(makespan) for r in results
        )

    def test_staggered_volumes_still_converge(self):
        net, pm = self._symmetric_pairing((8, 2))
        vols = [1.0 + 0.25 * i for i in range(len(pm))]
        sim = FluidSimulation(net, pm, vols)
        makespan, results = sim.run()
        assert sim.rounds_used > 1
        assert makespan == pytest.approx(
            max(r.completion_time for r in results)
        )

    def test_volume_conservation_over_segments(self):
        """Sum of rate x dt segments equals each flow's volume."""
        net, pm = self._symmetric_pairing((8, 2))
        vols = [1.0 + 0.25 * i for i in range(len(pm))]
        sim = FluidSimulation(net, pm, vols, record_segments=True)
        sim.run()
        delivered = np.zeros(len(pm))
        for dt, idx, rates in sim.segments:
            delivered[idx] += rates * dt
        assert delivered == pytest.approx(np.asarray(vols), rel=1e-9)

    def test_empty_path_flow_completes_at_time_zero(self):
        """A same-node flow (empty path) has rate inf and retires at
        t=0 instead of poisoning the remaining-volume arithmetic."""
        net, p01, _ = _net_and_paths()
        makespan, results = FluidSimulation(
            net, [np.empty(0, dtype=np.int64), p01], [1.0, 6.0]
        ).run()
        assert results[0].completion_time == 0.0
        assert results[0].initial_rate == np.inf
        assert makespan == pytest.approx(3.0)

    def test_solve_matches_run(self):
        net, pm = self._symmetric_pairing((4, 4))
        vols = [2.0] * len(pm)
        sim = FluidSimulation(net, pm, vols)
        makespan, completion, initial = sim.solve()
        makespan2, results = FluidSimulation(net, pm, vols).run()
        assert makespan == makespan2
        assert completion.tolist() == [
            r.completion_time for r in results
        ]
        assert initial.tolist() == [r.initial_rate for r in results]


class TestAgainstClosedForm:
    def test_pairing_time_is_volume_over_fair_rate(self):
        """For the symmetric pairing pattern, makespan = volume / rate."""
        t = Torus((8, 2))
        net = LinkNetwork(t, link_bandwidth=2.0)
        from repro.netsim.fairness import max_min_fair_rates
        from repro.netsim.traffic import bisection_pairing

        paths = [
            net.path_to_links(dimension_ordered_route(t, s, d))
            for s, d in bisection_pairing(t)
        ]
        rates = max_min_fair_rates(paths, net.capacities)
        vol = 3.0
        makespan = simulate_flows(net, paths, [vol] * len(paths))
        assert makespan == pytest.approx(vol / rates.min())
