"""Unit tests for rank-to-node embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.embedding import (
    RankEmbedding,
    block_embedding,
    node_enumeration,
)
from repro.topology.torus import Torus


class TestNodeEnumeration:
    def test_abcdet_is_identity(self):
        t = Torus((4, 2))
        assert list(node_enumeration(t, "abcdet")) == list(range(8))

    def test_tedcba_reverses_significance(self):
        t = Torus((4, 2))
        walk = node_enumeration(t, "tedcba")
        verts = list(t.vertices())
        walked = [verts[i] for i in walk]
        # First dimension varies fastest.
        assert walked[0] == (0, 0)
        assert walked[1] == (1, 0)

    def test_both_are_permutations(self):
        t = Torus((4, 3, 2))
        for order in ("abcdet", "tedcba"):
            walk = node_enumeration(t, order)
            assert sorted(walk) == list(range(24))

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            node_enumeration(Torus((4,)), "zyx")


class TestBlockEmbedding:
    def test_even_distribution(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 16)
        assert emb.max_ranks_per_node() == 2
        assert np.all(emb.ranks_per_node() == 2)

    def test_uneven_distribution_spreads_extras(self):
        t = Torus((4, 2))  # 8 nodes
        emb = block_embedding(t, 10)
        counts = emb.ranks_per_node()
        assert counts.sum() == 10
        assert counts.max() == 2
        assert counts.min() == 1

    def test_fewer_ranks_than_nodes(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 3)
        assert emb.max_ranks_per_node() == 1

    def test_core_limit_enforced(self):
        t = Torus((4, 2))
        with pytest.raises(ValueError):
            block_embedding(t, 17, max_ranks_per_node=2)

    def test_contiguous_ranks_share_nodes(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 16)
        assert emb.node_index_of(0) == emb.node_index_of(1)
        assert emb.node_index_of(0) != emb.node_index_of(2)

    def test_node_order_changes_placement(self):
        t = Torus((4, 2))
        a = block_embedding(t, 8, node_order="abcdet")
        b = block_embedding(t, 8, node_order="tedcba")
        assert a.node_of(1) != b.node_of(1)


class TestRankEmbedding:
    def test_node_of_roundtrip(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 8)
        verts = list(t.vertices())
        for r in range(8):
            assert emb.node_of(r) == verts[emb.node_index_of(r)]

    def test_node_indices_read_only(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 8)
        with pytest.raises(ValueError):
            emb.node_indices[0] = 3

    def test_invalid_indices_rejected(self):
        t = Torus((4, 2))
        with pytest.raises(ValueError):
            RankEmbedding(t, [0, 8])
        with pytest.raises(ValueError):
            RankEmbedding(t, [])

    def test_aggregate_traffic_drops_intranode(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 16)  # ranks 0,1 on node 0; 2,3 on node 1
        traffic = emb.aggregate_traffic([(0, 1), (0, 2), (1, 3)])
        assert (0, 0) not in traffic  # intra-node dropped
        assert traffic[(0, 1)] == 2.0

    def test_aggregate_traffic_with_volumes(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 16)
        traffic = emb.aggregate_traffic([(0, 2), (1, 2)], volumes=[1.5, 2.5])
        assert traffic[(0, 1)] == 4.0

    def test_aggregate_volume_mismatch(self):
        t = Torus((4, 2))
        emb = block_embedding(t, 16)
        with pytest.raises(ValueError):
            emb.aggregate_traffic([(0, 2)], volumes=[1.0, 2.0])
