"""Run the doctest examples embedded in the public docstrings.

The examples double as documentation and as executable specifications;
this harness keeps them honest.  Heavy modules (full experiment runs)
are exercised by their own tests and benchmarks instead.
"""

from __future__ import annotations

import doctest

import pytest

import repro.allocation.enumeration
import repro.allocation.geometry
import repro.allocation.variability
import repro.isoperimetry.bounds
import repro.isoperimetry.cuboids
import repro.isoperimetry.harper
import repro.isoperimetry.lindsey
import repro.isoperimetry.mesh2d
import repro.kernels.caps
import repro.kernels.costmodel
import repro.kernels.strassen
import repro.machines.bgq
import repro.netsim.network
import repro.parallel
import repro.topology.clique_product
import repro.topology.fattree
import repro.topology.hypercube
import repro.topology.mesh
import repro.topology.slimfly
import repro.topology.torus

MODULES = [
    repro.topology.torus,
    repro.topology.hypercube,
    repro.topology.mesh,
    repro.topology.clique_product,
    repro.topology.fattree,
    repro.topology.slimfly,
    repro.isoperimetry.bounds,
    repro.isoperimetry.cuboids,
    repro.isoperimetry.harper,
    repro.isoperimetry.lindsey,
    repro.isoperimetry.mesh2d,
    repro.machines.bgq,
    repro.allocation.geometry,
    repro.allocation.enumeration,
    repro.allocation.variability,
    repro.netsim.network,
    repro.parallel,
    repro.kernels.strassen,
    repro.kernels.caps,
    repro.kernels.costmodel,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, (
        f"{module.__name__}: {result.failed} doctest failures"
    )
    assert result.attempted > 0, (
        f"{module.__name__} has no doctest examples"
    )
