"""CLI tests for the variability subcommand."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDesignSearchCommand:
    def test_runs_and_ranks_juqueen_48_first(self, capsys):
        assert main(["design-search", "juqueen", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 x 3 x 2 x 2" in out.splitlines()[3]

    def test_unknown_baseline(self, capsys):
        assert main(["design-search", "summit"]) == 2


class TestVariabilityCommand:
    def test_runs_and_shows_rules(self, capsys):
        assert main(["variability", "juqueen", "8", "--num-jobs", "20"]) == 0
        out = capsys.readouterr().out
        for rule in ("best", "worst", "random", "first-fit"):
            assert rule in out

    def test_spread_visible_for_improvable_size(self, capsys):
        assert main(
            ["variability", "juqueen", "8", "--num-jobs", "50",
             "--fraction", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "2" in out  # the x2 spread appears

    def test_bad_size_exit_2(self, capsys):
        assert main(["variability", "juqueen", "11"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_fraction_exit_2(self, capsys):
        assert main(
            ["variability", "juqueen", "8", "--fraction", "2.0"]
        ) == 2
